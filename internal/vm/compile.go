package vm

import (
	"context"
	"fmt"
	"sync/atomic"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

// The compiled-closure execution engine (third engine).
//
// PR 8's superinstruction threading showed that dispatch is no longer
// the dominant cost: fused units already collapse a hot loop body into
// one or two dispatches, yet wall clock barely moves, because every
// member still runs through an interpreter switch with its generic
// operand plumbing. This backend removes the interpreter from the hot
// path entirely: each prepared program is translated once per
// (program, processor) pair into a tree of composed Go closures —
// continuation-threaded code. Every op becomes a small typed closure
// capturing its dense-ID operands and pre-resolved cost, chained per
// basic block, so a block executes as native Go control flow: no
// per-op switch, no per-op poll or cycle-limit branch, and no operand
// re-validation (register indices were checked at lowering; array
// bounds, the only runtime-dependent checks, remain).
//
// Region selection reuses the superinstruction miner's block analysis
// (blockLeaders): the program is partitioned into basic blocks, and
// each block whose members are all translatable compiles to one
// closure chain with batched cycle/class accounting, exactly like an
// xSuper unit spanning the whole block. Blocks containing an op the
// translator does not cover — OpAlloc (runtime-dependent zero-fill
// charge) or an OpIntr that faults on this processor — fall back to a
// per-op stepper with the prepared engine's exact charge ordering, so
// translator coverage can grow incrementally without ever being
// wrong.
//
// Cycle- and fault-exactness mirror the xSuper contract:
//   - The chain runs only when the whole block fits under the cycle
//     limit (cycles+cost <= maxCycles), which makes every per-member
//     limit check provably dead; otherwise the block is stepped one op
//     at a time with the reference engine's limit-check/charge order.
//   - A faulting member replays the completed prefix's charges
//     member-by-member (honoring chargeFirstOp placement) and reports
//     the member's own pc, bit-identical to the reference engine.
//   - Cancellation stays bounded by CancelCheckStride: the poll debt
//     of a block is settled before it runs.
//   - Machine.Profile forces a counting path: per-pc counts are
//     credited for every member on block completion (and for the
//     executed prefix on a fault), so profiles match the reference
//     engine exactly.
//
// Machine.SuperSet is ignored under this engine: blocks already
// batch accounting block-wide, which subsumes any fusion set.

// EngineCompiled is the compiled-closure execution engine: each basic
// block of the prepared program is translated into a chain of typed Go
// closures with batched cycle/class accounting (see compile.go).
const EngineCompiled = "compiled"

// backendCompiled tags compiled translations in the prepared-program
// cache so they never alias the prepared decode of the same
// (program, processor) pair. Bump the version when translation output
// changes shape.
const backendCompiled = "compiled/v1"

// cont is one continuation of a compiled block: it executes its op and
// every op threaded after it. On success the int is the next pc to
// resume at (-1 = the program returned). On error the int is the
// faulting member's index within its block, so the caller can replay
// the completed prefix's charges.
type cont func(s *scratch) (int, error)

// cBlock is one basic block of a compiled program. run == nil marks a
// fallback block (contains an op the translator does not cover); cost
// and charges aggregate every member including the terminator, valid
// only for translated blocks.
type cBlock struct {
	start, end int // half-open pc range
	n          int64
	cost       int64
	charges    []classCharge
	run        cont
}

// CompiledProgram is a Program translated to continuation-threaded Go
// closures against one processor's cost model. It is immutable and
// safe for concurrent use; execution borrows scratch arenas from the
// underlying prepared program's pool.
type CompiledProgram struct {
	pp      *PreparedProgram
	blocks  []cBlock
	blockOf []int32 // pc -> index into blocks

	compiled int // blocks with a closure chain
	fallback int // blocks stepped per-op
}

// BlockCounts reports how many basic blocks compiled to closure chains
// and how many fell back to per-op stepping — the coverage signal the
// benchtab collapse gate checks.
func (cp *CompiledProgram) BlockCounts() (compiled, fallback int) {
	return cp.compiled, cp.fallback
}

// CompileProgram translates prog for proc without consulting the
// cache. Most callers want CompiledFor.
func CompileProgram(prog *Program, proc *pdesc.Processor) *CompiledProgram {
	// The translation source is the plain prepared decode (no fused
	// xSuper units), so code indices map 1:1 to program pcs.
	return newCompiledProgram(PreparedForSet(prog, proc, nil))
}

// CompiledFor returns the compiled form of prog for proc, consulting
// the process-wide prepared-program cache under a backend tag that
// keeps compiled and prepared entries from aliasing. Both values must
// be treated as immutable after this call. Safe for concurrent use.
func CompiledFor(prog *Program, proc *pdesc.Processor) *CompiledProgram {
	ph, ok := processorHash(proc)
	if !ok {
		// Unhashable description (should not happen): translate uncached.
		return CompileProgram(prog, proc)
	}
	key := preparedKey{prog: prog.ContentHash(), proc: ph, backend: backendCompiled}

	if e, ok := cacheGet(key); ok {
		return e.cp
	}
	cp := CompileProgram(prog, proc)
	return cacheInsert(key, &preparedEntry{key: key, cp: cp}).cp
}

// newCompiledProgram partitions pp's (unfused) code into basic blocks
// and builds a closure chain per fully-translatable block.
func newCompiledProgram(pp *PreparedProgram) *CompiledProgram {
	cp := &CompiledProgram{
		pp:      pp,
		blockOf: make([]int32, len(pp.code)),
	}
	leaders := blockLeaders(pp.prog)
	start := 0
	for pc := 1; pc <= len(pp.code); pc++ {
		if pc < len(pp.code) && !leaders[pc] {
			continue
		}
		b := cBlock{start: start, end: pc, n: int64(pc - start)}
		agg := make(map[int32]int64, pc-start)
		for i := start; i < pc; i++ {
			in := &pp.code[i]
			b.cost += in.cost
			if in.class >= 0 && in.countN != 0 {
				agg[in.class] += in.countN
			}
		}
		b.charges = aggCharges(agg)
		b.run = cp.buildChain(&b)
		idx := int32(len(cp.blocks))
		for i := start; i < pc; i++ {
			cp.blockOf[i] = idx
		}
		if b.run != nil {
			cp.compiled++
		} else {
			cp.fallback++
		}
		cp.blocks = append(cp.blocks, b)
		start = pc
	}
	compiledStats.translations.Add(1)
	compiledStats.blocks.Add(uint64(cp.compiled))
	compiledStats.fallback.Add(uint64(cp.fallback))
	return cp
}

// aggCharges sorts an aggregated class->count map into the stable
// charge list applied when a block completes (same shape as
// fuseSuperinsts builds for xSuper units).
func aggCharges(agg map[int32]int64) []classCharge {
	charges := make([]classCharge, 0, len(agg))
	for class, cnt := range agg {
		charges = append(charges, classCharge{class: class, n: cnt})
	}
	for i := 1; i < len(charges); i++ {
		for j := i; j > 0 && charges[j].class < charges[j-1].class; j-- {
			charges[j], charges[j-1] = charges[j-1], charges[j]
		}
	}
	return charges
}

// buildChain threads block b into one continuation, last member first,
// or returns nil when any member is untranslatable. The terminator
// resolves the successor pc natively; everything before it is a typed
// closure calling the next one.
func (cp *CompiledProgram) buildChain(b *cBlock) cont {
	code := cp.pp.code
	if b.end <= b.start {
		return nil
	}
	last := b.end - 1
	var next cont
	i := last
	switch in := &code[last]; in.op {
	case OpJmp:
		off := in.off
		next = func(*scratch) (int, error) { return off, nil }
		i--
	case OpJz:
		a, off, fall := in.a, in.off, b.end
		next = func(s *scratch) (int, error) {
			if isZeroP(&s.regs[a]) {
				return off, nil
			}
			return fall, nil
		}
		i--
	case OpRet:
		next = func(*scratch) (int, error) { return -1, nil }
		i--
	default:
		fall := b.end
		next = func(*scratch) (int, error) { return fall, nil }
	}
	for ; i >= b.start; i-- {
		c, ok := cp.translateOp(&code[i], i-b.start, next)
		if !ok {
			return nil
		}
		next = c
	}
	return next
}

// intCond resolves a fused integer-compare opcode to its predicate at
// translate time, so the closure carries no switch.
func intCond(op Opc) func(x, y int64) bool {
	switch op {
	case xILt:
		return func(x, y int64) bool { return x < y }
	case xILe:
		return func(x, y int64) bool { return x <= y }
	case xIGt:
		return func(x, y int64) bool { return x > y }
	case xIGe:
		return func(x, y int64) bool { return x >= y }
	case xIEq:
		return func(x, y int64) bool { return x == y }
	case xINe:
		return func(x, y int64) bool { return x != y }
	case xIAnd:
		return func(x, y int64) bool { return x != 0 && y != 0 }
	default: // xIOr
		return func(x, y int64) bool { return x != 0 || y != 0 }
	}
}

// floatCond resolves a fused float-compare opcode (either result base)
// to its predicate at translate time.
func floatCond(op Opc) func(x, y float64) bool {
	switch op {
	case xFLt, xFLtI:
		return func(x, y float64) bool { return x < y }
	case xFLe, xFLeI:
		return func(x, y float64) bool { return x <= y }
	case xFGt, xFGtI:
		return func(x, y float64) bool { return x > y }
	case xFGe, xFGeI:
		return func(x, y float64) bool { return x >= y }
	case xFEq, xFEqI:
		return func(x, y float64) bool { return x == y }
	default: // xFNe, xFNeI
		return func(x, y float64) bool { return x != y }
	}
}

// translateOp builds the closure for one non-terminator member, or
// reports ok=false when the op is untranslatable (the whole block then
// falls back to per-op stepping). k is the member's index within its
// block; fallible closures return it with their fault so the caller
// can replay the completed prefix's charges. Every case must compute
// exactly what its runSuper counterpart computes — the four-way
// differential tests and FuzzCompiledEngine enforce this bit for bit.
func (cp *CompiledProgram) translateOp(in *pInstr, k int, next cont) (cont, bool) {
	switch in.op {
	case OpNop:
		return next, true

	case OpConst:
		dst, v := in.dst, in.val
		return func(s *scratch) (int, error) {
			s.regs[dst] = v
			return next(s)
		}, true

	case OpMov:
		dst, a := in.dst, in.a
		return func(s *scratch) (int, error) {
			src := &s.regs[a]
			lanes := src.lanes
			if lanes != nil {
				d := s.seg(dst, len(lanes))
				copy(d, lanes)
				lanes = d
			}
			dr := &s.regs[dst]
			dr.i, dr.f, dr.c, dr.lanes = src.i, src.f, src.c, lanes
			return next(s)
		}, true

	case OpConv:
		dst, a, kBase := in.dst, in.a, in.kBase
		if in.lanes > 1 {
			lanes := in.lanes
			return func(s *scratch) (int, error) {
				d := s.seg(dst, lanes)
				convInto(d, s.regs[a], kBase)
				s.regs[dst] = vmval{lanes: d}
				return next(s)
			}, true
		}
		switch kBase {
		case ir.Int:
			return func(s *scratch) (int, error) {
				setInt(&s.regs[dst], s.regs[a].i)
				return next(s)
			}, true
		case ir.Float:
			return func(s *scratch) (int, error) {
				setFloat(&s.regs[dst], s.regs[a].f)
				return next(s)
			}, true
		default:
			return func(s *scratch) (int, error) {
				setComplex(&s.regs[dst], s.regs[a].c)
				return next(s)
			}, true
		}

	case OpBin:
		dst, a, b := in.dst, in.a, in.b
		bop, opBase, kBase := in.bop, in.opBase, in.kBase
		if in.lanes <= 1 {
			return func(s *scratch) (int, error) {
				if err := binScalarInto(&s.regs[dst], bop, opBase, kBase, &s.regs[a], &s.regs[b]); err != nil {
					return k, err
				}
				return next(s)
			}, true
		}
		lanes := in.lanes
		return func(s *scratch) (int, error) {
			av, bv := &s.regs[a], &s.regs[b]
			d := s.seg(dst, lanes)
			for j := 0; j < lanes; j++ {
				r, err := binLane(bop, opBase, kBase, laneOf(av, j), laneOf(bv, j))
				if err != nil {
					return k, err
				}
				d[j] = r
			}
			s.regs[dst] = vmval{lanes: d}
			return next(s)
		}, true

	case xIAdd:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setInt(&s.regs[dst], s.regs[a].i+s.regs[b].i)
			return next(s)
		}, true

	case xISub:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setInt(&s.regs[dst], s.regs[a].i-s.regs[b].i)
			return next(s)
		}, true

	case xIMul:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setInt(&s.regs[dst], s.regs[a].i*s.regs[b].i)
			return next(s)
		}, true

	case xILt, xILe, xIGt, xIGe, xIEq, xINe, xIAnd, xIOr:
		dst, a, b := in.dst, in.a, in.b
		cond := intCond(in.op)
		return func(s *scratch) (int, error) {
			setInt(&s.regs[dst], b2i(cond(s.regs[a].i, s.regs[b].i)))
			return next(s)
		}, true

	case xFAdd:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setFloat(&s.regs[dst], s.regs[a].f+s.regs[b].f)
			return next(s)
		}, true

	case xFSub:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setFloat(&s.regs[dst], s.regs[a].f-s.regs[b].f)
			return next(s)
		}, true

	case xFMul:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setFloat(&s.regs[dst], s.regs[a].f*s.regs[b].f)
			return next(s)
		}, true

	case xFDiv:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setFloat(&s.regs[dst], s.regs[a].f/s.regs[b].f)
			return next(s)
		}, true

	case xFLt, xFLe, xFGt, xFGe, xFEq, xFNe,
		xFLtI, xFLeI, xFGtI, xFGeI, xFEqI, xFNeI:
		dst, a, b := in.dst, in.a, in.b
		cond := floatCond(in.op)
		return func(s *scratch) (int, error) {
			setInt(&s.regs[dst], b2i(cond(s.regs[a].f, s.regs[b].f)))
			return next(s)
		}, true

	case xCAdd:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setComplex(&s.regs[dst], s.regs[a].c+s.regs[b].c)
			return next(s)
		}, true

	case xCSub:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setComplex(&s.regs[dst], s.regs[a].c-s.regs[b].c)
			return next(s)
		}, true

	case xCMul:
		dst, a, b := in.dst, in.a, in.b
		return func(s *scratch) (int, error) {
			setComplex(&s.regs[dst], s.regs[a].c*s.regs[b].c)
			return next(s)
		}, true

	case xIntrS:
		dst, intr, kBase := in.dst, in.intr, in.kBase
		a0r, a1r := in.args[0], in.args[1]
		a2r := -1
		if len(in.args) > 2 {
			a2r = in.args[2]
		}
		return func(s *scratch) (int, error) {
			regs := s.regs
			a0 := lane0(regs, a0r)
			a1 := lane0(regs, a1r)
			var a2 complex128
			if a2r >= 0 {
				a2 = lane0(regs, a2r)
			}
			setMaterialize(&regs[dst], intrLane(intr, a0, a1, a2), kBase)
			return next(s)
		}, true

	case OpUn:
		dst, a := in.dst, in.a
		bop, opBase, kBase := in.bop, in.opBase, in.kBase
		if in.lanes <= 1 {
			return func(s *scratch) (int, error) {
				v, err := unScalar(bop, opBase, kBase, s.regs[a])
				if err != nil {
					return k, err
				}
				s.regs[dst] = v
				return next(s)
			}, true
		}
		lanes := in.lanes
		return func(s *scratch) (int, error) {
			av := &s.regs[a]
			d := s.seg(dst, lanes)
			for j := 0; j < lanes; j++ {
				v, err := unLane(bop, opBase, kBase, laneOf(av, j))
				if err != nil {
					return k, err
				}
				d[j] = v
			}
			s.regs[dst] = vmval{lanes: d}
			return next(s)
		}, true

	case OpIntr:
		if in.intrFaultPre != "" || in.intrFaultPost != "" {
			// Faulting intrinsics keep the prepared engine's exact
			// pre/post-charge fault ordering: fall back.
			return nil, false
		}
		dst, lanes, kBase := in.dst, in.lanes, in.kBase
		if in.pat != nil {
			pat, args := in.pat, in.args
			return func(s *scratch) (int, error) {
				d := s.seg(dst, lanes)
				var argbuf [ir.MaxPatternArity]complex128
				pargs := argbuf[:len(args)]
				for j := 0; j < lanes; j++ {
					for ai, r := range args {
						pargs[ai] = laneOf(&s.regs[r], j)
					}
					d[j] = pat.EvalLane(pargs)
				}
				if lanes <= 1 {
					setMaterialize(&s.regs[dst], d[0], kBase)
				} else {
					s.regs[dst] = vmval{lanes: d}
				}
				return next(s)
			}, true
		}
		intr := in.intr
		a0r, a1r := in.args[0], in.args[1]
		a2r := -1
		if len(in.args) > 2 {
			a2r = in.args[2]
		}
		return func(s *scratch) (int, error) {
			a0, a1 := &s.regs[a0r], &s.regs[a1r]
			a2 := &zeroVmval
			if a2r >= 0 {
				a2 = &s.regs[a2r]
			}
			d := s.seg(dst, lanes)
			for j := 0; j < lanes; j++ {
				d[j] = intrLane(intr, laneOf(a0, j), laneOf(a1, j), laneOf(a2, j))
			}
			if lanes <= 1 {
				setMaterialize(&s.regs[dst], d[0], kBase)
			} else {
				s.regs[dst] = vmval{lanes: d}
			}
			return next(s)
		}, true

	case OpLoad:
		dst, a, arr, name := in.dst, in.a, in.arr, in.arrName
		if in.elem == ir.Complex {
			return func(s *scratch) (int, error) {
				ar := s.arrays[arr]
				if ar == nil {
					return k, fmt.Errorf("load from unallocated array %s", name)
				}
				idx := int(s.regs[a].i)
				if idx < 0 || idx >= ar.Len() {
					return k, fmt.Errorf("load %s[%d] out of bounds (len %d)", name, idx, ar.Len())
				}
				setComplex(&s.regs[dst], ar.C[idx])
				return next(s)
			}, true
		}
		return func(s *scratch) (int, error) {
			ar := s.arrays[arr]
			if ar == nil {
				return k, fmt.Errorf("load from unallocated array %s", name)
			}
			idx := int(s.regs[a].i)
			if idx < 0 || idx >= ar.Len() {
				return k, fmt.Errorf("load %s[%d] out of bounds (len %d)", name, idx, ar.Len())
			}
			setFloat(&s.regs[dst], ar.F[idx])
			return next(s)
		}, true

	case OpVLoad:
		dst, a, arr, name := in.dst, in.a, in.arr, in.arrName
		lanes, stride, loOff, hiOff := in.lanes, in.stride, in.loOff, in.hiOff
		cplx := in.elem == ir.Complex
		return func(s *scratch) (int, error) {
			ar := s.arrays[arr]
			if ar == nil {
				return k, fmt.Errorf("vload from unallocated array %s", name)
			}
			base := int(s.regs[a].i)
			lo, hi := base+loOff, base+hiOff
			if lo < 0 || hi >= ar.Len() {
				return k, fmt.Errorf("vload %s[%d..%d] out of bounds (len %d)", name, lo, hi, ar.Len())
			}
			d := s.seg(dst, lanes)
			if cplx && stride == 1 {
				copy(d, ar.C[base:base+lanes])
			} else {
				for j := 0; j < lanes; j++ {
					d[j] = ar.At(base + j*stride)
				}
			}
			s.regs[dst] = vmval{lanes: d}
			return next(s)
		}, true

	case OpStore:
		a, b, arr, name, lanes := in.a, in.b, in.arr, in.arrName, in.lanes
		return func(s *scratch) (int, error) {
			ar := s.arrays[arr]
			if ar == nil {
				return k, fmt.Errorf("store to unallocated array %s", name)
			}
			base := int(s.regs[a].i)
			val := &s.regs[b]
			if base < 0 || base+lanes > ar.Len() {
				return k, fmt.Errorf("store %s[%d..%d] out of bounds (len %d)", name, base, base+lanes-1, ar.Len())
			}
			if lanes > 1 {
				for j := 0; j < lanes; j++ {
					storeElem(ar, base+j, laneOf(val, j))
				}
			} else {
				storeElem(ar, base, val.c)
			}
			return next(s)
		}, true

	case OpDim:
		dst, arr, name, immI := in.dst, in.arr, in.arrName, in.immI
		return func(s *scratch) (int, error) {
			ar := s.arrays[arr]
			if ar == nil {
				return k, fmt.Errorf("dim of unallocated array %s", name)
			}
			switch immI {
			case int64(ir.DimRows):
				setInt(&s.regs[dst], int64(ar.Rows))
			case int64(ir.DimCols):
				setInt(&s.regs[dst], int64(ar.Cols))
			default:
				setInt(&s.regs[dst], int64(ar.Len()))
			}
			return next(s)
		}, true

	case OpSel:
		dst, kBase := in.dst, in.kBase
		condR, thR, elR := in.args[0], in.args[1], in.args[2]
		if in.lanes <= 1 {
			return func(s *scratch) (int, error) {
				src := &s.regs[elR]
				if !isZeroP(&s.regs[condR]) {
					src = &s.regs[thR]
				}
				d := &s.regs[dst]
				switch kBase {
				case ir.Int:
					setInt(d, src.i)
				case ir.Float:
					setFloat(d, src.f)
				default:
					setComplex(d, src.c)
				}
				return next(s)
			}, true
		}
		lanes := in.lanes
		return func(s *scratch) (int, error) {
			cond, th, el := &s.regs[condR], &s.regs[thR], &s.regs[elR]
			d := s.seg(dst, lanes)
			for j := 0; j < lanes; j++ {
				var v complex128
				if laneOf(cond, j) != 0 {
					v = laneOf(th, j)
				} else {
					v = laneOf(el, j)
				}
				if kBase != ir.Complex {
					v = complex(real(v), 0)
				}
				d[j] = v
			}
			s.regs[dst] = vmval{lanes: d}
			return next(s)
		}, true

	case OpSplat:
		dst, a, lanes := in.dst, in.a, in.lanes
		return func(s *scratch) (int, error) {
			d := s.seg(dst, lanes)
			v := s.regs[a].c
			for j := range d {
				d[j] = v
			}
			s.regs[dst] = vmval{lanes: d}
			return next(s)
		}, true

	case OpRamp:
		dst, a, lanes, step := in.dst, in.a, in.lanes, in.immI
		return func(s *scratch) (int, error) {
			d := s.seg(dst, lanes)
			base := s.regs[a].i
			for j := range d {
				d[j] = complex(float64(base+int64(j)*step), 0)
			}
			s.regs[dst] = vmval{lanes: d}
			return next(s)
		}, true

	case OpReduce:
		dst, a := in.dst, in.a
		bop, opBase, kBase := in.bop, in.opBase, in.kBase
		return func(s *scratch) (int, error) {
			lanes := s.regs[a].lanes
			if lanes == nil {
				return k, fmt.Errorf("reduce of scalar register")
			}
			acc := lanes[0]
			for j := 1; j < len(lanes); j++ {
				var err error
				acc, err = scalarBin(bop, opBase, acc, lanes[j])
				if err != nil {
					return k, err
				}
			}
			setMaterialize(&s.regs[dst], acc, kBase)
			return next(s)
		}, true
	}

	// OpAlloc (runtime-dependent zero-fill charge) and anything the
	// translator does not know: the block falls back to per-op stepping.
	return nil, false
}

// run executes the compiled program on behalf of m.Run. The machine's
// Cycles/Executed/ClassCounts have already been reset; they are updated
// here even when execution faults, matching the other engines' partial
// state on error.
func (cp *CompiledProgram) run(m *Machine, ctx context.Context, maxCycles int64, args []interface{}) ([]interface{}, error) {
	pp := cp.pp
	s := pp.getScratch()
	defer pp.putScratch(s)
	if err := bindArgs(pp.prog, args, s.regs, s.arrays); err != nil {
		return nil, err
	}
	err := cp.exec(m, ctx, s, maxCycles)
	for id, t := range s.touched {
		if t {
			m.ClassCounts[pp.table.Name(id)] += s.counts[id]
		}
	}
	if err != nil {
		return nil, err
	}
	return collectResults(pp.prog, s.regs, s.arrays)
}

// exec is the compiled hot loop: one iteration per basic block. Every
// resumable pc is a block leader (entry, branch target, or fallthrough
// successor — blockLeaders guarantees it), so a block always runs from
// its start.
func (cp *CompiledProgram) exec(m *Machine, ctx context.Context, s *scratch, maxCycles int64) error {
	var cycles, executed, dispSaved int64
	defer func() {
		m.Cycles = cycles
		m.Executed = executed
		if dispSaved > 0 {
			compiledStats.saved.Add(uint64(dispSaved))
		}
	}()

	counts := s.counts
	touched := s.touched
	code := cp.pp.code
	var prof []int64
	if m.Profile {
		prof = m.PCCounts
	}

	pollIn := int64(CancelCheckStride)
	pc := 0
	for pc >= 0 && pc < len(code) {
		b := &cp.blocks[cp.blockOf[pc]]
		// Settle the whole block's poll debt before it runs, like
		// xSuper: fewer than CancelCheckStride instructions ever
		// separate two polls, and the poll charges nothing.
		if ctx != nil {
			if pollIn -= b.n; pollIn <= 0 {
				pollIn = CancelCheckStride
				if err := ctx.Err(); err != nil {
					return &CancelledError{Executed: executed, Err: err}
				}
			}
		}
		if b.run != nil && cycles+b.cost <= maxCycles {
			// Fast path: the whole block fits under the cycle limit
			// (the per-member checks provably cannot fire), so the
			// closure chain runs semantics-only and accounting lands
			// once, batched.
			next, ferr := b.run(s)
			if ferr == nil {
				cycles += b.cost
				executed += b.n
				for i := range b.charges {
					ch := &b.charges[i]
					counts[ch.class] += ch.n
					touched[ch.class] = true
				}
				if prof != nil {
					for j := b.start; j < b.end; j++ {
						prof[j]++
					}
				}
				dispSaved += b.n - 1
				pc = next
				continue
			}
			// Member `next` faulted: replay the completed prefix's
			// charges, plus the member's own charge when its opcode
			// charges before its fault checks, then report the
			// member's pc — bit-identical to the reference engine.
			k := next
			for j := 0; j <= k; j++ {
				sb := &code[b.start+j]
				if j == k && !chargeFirstOp(sb.op) {
					break
				}
				cycles += sb.cost
				if sb.class >= 0 {
					counts[sb.class] += sb.countN
					touched[sb.class] = true
				}
			}
			executed += int64(k) + 1
			if prof != nil {
				for j := 0; j <= k; j++ {
					prof[b.start+j]++
				}
			}
			dispSaved += int64(k)
			return &FaultError{PC: b.start + k, Msg: ferr.Error()}
		}
		// Fallback block, or the cycle limit is within the block's
		// reach: step ops one at a time with the reference engine's
		// exact limit-check/charge ordering.
		next, err := cp.stepBlock(s, b, &cycles, &executed, prof, maxCycles)
		if err != nil {
			return err
		}
		pc = next
	}
	return nil
}

// stepBlock executes block b one op at a time with the reference
// engine's exact ordering — limit check, executed++, charge placement
// around fault checks — and returns the successor pc (-1 = returned).
// It handles the ops the translator does not (OpAlloc, faulting
// OpIntr) and doubles as the cycle-limit slow path for compiled
// blocks.
func (cp *CompiledProgram) stepBlock(s *scratch, b *cBlock, cycles, executed *int64, prof []int64, maxCycles int64) (int, error) {
	pp := cp.pp
	code := pp.code
	counts := s.counts
	touched := s.touched
	for pc := b.start; pc < b.end; pc++ {
		if *cycles > maxCycles {
			return 0, &FaultError{PC: pc, Msg: fmt.Sprintf("cycle limit exceeded (%d)", maxCycles)}
		}
		*executed++
		if prof != nil {
			prof[pc]++
		}
		in := &code[pc]
		charge := func() {
			*cycles += in.cost
			if in.class >= 0 {
				counts[in.class] += in.countN
				touched[in.class] = true
			}
		}
		switch in.op {
		case OpJmp:
			charge()
			return in.off, nil

		case OpJz:
			charge()
			if isZeroP(&s.regs[in.a]) {
				return in.off, nil
			}
			return pc + 1, nil

		case OpRet:
			charge()
			return -1, nil

		case OpAlloc:
			r := int(s.regs[in.a].i)
			c := int(s.regs[in.b].i)
			if r < 0 || c < 0 || r*c > 1<<28 {
				return 0, &FaultError{PC: pc, Msg: fmt.Sprintf("alloc %s: bad extent %dx%d", in.arrName, r, c)}
			}
			if in.elem == ir.Complex {
				s.arrays[in.arr] = ir.NewComplexArray(r, c)
			} else {
				s.arrays[in.arr] = ir.NewFloatArray(r, c)
			}
			charge()
			// Zero-fill cost: one wide store per SIMD word.
			words := (int64(r)*int64(c) + in.allocW - 1) / in.allocW
			*cycles += in.zeroCost * words
			counts[in.zeroClass] += words
			touched[in.zeroClass] = true

		case OpIntr:
			if in.intrFaultPre != "" {
				return 0, &FaultError{PC: pc, Msg: in.intrFaultPre}
			}
			charge()
			if in.intrFaultPost != "" {
				return 0, &FaultError{PC: pc, Msg: in.intrFaultPost}
			}
			if _, err := pp.runSuper(code[pc:pc+1], s); err != nil {
				return 0, &FaultError{PC: pc, Msg: err.Error()}
			}

		default:
			first := chargeFirstOp(in.op)
			if first {
				charge()
			}
			if _, err := pp.runSuper(code[pc:pc+1], s); err != nil {
				return 0, &FaultError{PC: pc, Msg: err.Error()}
			}
			if !first {
				charge()
			}
		}
	}
	return b.end, nil
}

// compiledStats are process-wide compiled-backend counters, exported
// for /metrics. Translation counts accrue per CompileProgram;
// DispatchesSaved accrues per run (flushed once at run end, so the hot
// loop stays free of atomics).
var compiledStats struct {
	translations atomic.Uint64
	blocks       atomic.Uint64
	fallback     atomic.Uint64
	saved        atomic.Uint64
}

// CompiledInfo is a point-in-time snapshot of the compiled backend,
// exported for service metrics and tooling.
type CompiledInfo struct {
	// Translations counts programs translated to closure chains.
	Translations uint64 `json:"translations"`
	// BlocksCompiled / FallbackBlocks count basic blocks that compiled
	// to a closure chain vs. blocks left to the per-op stepper, across
	// all translations. FallbackBlocks growing relative to
	// BlocksCompiled means translator coverage regressed.
	BlocksCompiled uint64 `json:"blocks_compiled"`
	FallbackBlocks uint64 `json:"fallback_blocks"`
	// DispatchesSaved counts dynamic dispatch slots eliminated by
	// whole-block execution: Σ (members−1) over every executed block.
	DispatchesSaved uint64 `json:"dispatches_saved"`
}

// CompiledStats reports the process-wide compiled-backend counters.
func CompiledStats() CompiledInfo {
	return CompiledInfo{
		Translations:    compiledStats.translations.Load(),
		BlocksCompiled:  compiledStats.blocks.Load(),
		FallbackBlocks:  compiledStats.fallback.Load(),
		DispatchesSaved: compiledStats.saved.Load(),
	}
}

// ResetCompiledStats zeroes the compiled-backend counters (tests).
func ResetCompiledStats() {
	compiledStats.translations.Store(0)
	compiledStats.blocks.Store(0)
	compiledStats.fallback.Store(0)
	compiledStats.saved.Store(0)
}
