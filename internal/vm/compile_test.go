package vm

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mat2c/internal/pdesc"
)

// TestCompiledStatsAccrue: one straight-line program is one block, one
// translation, and a whole-block dispatch per run.
func TestCompiledStatsAccrue(t *testing.T) {
	ResetCompiledStats()
	ResetPreparedCache()
	defer ResetPreparedCache()
	prog := scalarProg(20)
	m := NewMachine(pdesc.Builtin("scalar"))
	m.Engine = EngineCompiled
	if _, err := m.Run(prog, 1.0); err != nil {
		t.Fatal(err)
	}
	st := CompiledStats()
	if st.Translations != 1 || st.BlocksCompiled != 1 || st.FallbackBlocks != 0 {
		t.Errorf("stats = %+v, want 1 translation, 1 compiled block, 0 fallback", st)
	}
	// 21 members (20 adds + ret) in one dispatch: 20 slots saved.
	if st.DispatchesSaved != 20 {
		t.Errorf("DispatchesSaved = %d, want 20", st.DispatchesSaved)
	}
}

// TestCompiledCacheKeying: compiled translations are cached under a
// backend tag, shared across content-identical processors, and never
// alias the prepared decode of the same pair.
func TestCompiledCacheKeying(t *testing.T) {
	ResetPreparedCache()
	defer ResetPreparedCache()
	prog := scalarProg(8)
	proc := pdesc.Builtin("scalar")
	cp1 := CompiledFor(prog, proc)
	if cp2 := CompiledFor(prog, proc); cp2 != cp1 {
		t.Error("same program+processor should share a translation")
	}
	if cp3 := CompiledFor(prog, proc.Clone()); cp3 != cp1 {
		t.Error("content-identical processor clone should share the translation")
	}
	// The translation is built from (and shares) the plain prepared
	// decode, but lives under its own cache entry.
	if pp := PreparedForSet(prog, proc, nil); cp1.pp != pp {
		t.Error("translation does not share the plain prepared decode")
	}
	st := PreparedCacheStats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (prepared decode + compiled translation)", st.Entries)
	}
}

// TestCompiledFallbackBlocks: a program with an OpAlloc (runtime-sized
// zero-fill charge) keeps that block on the per-op stepper but still
// runs correctly end to end. The fir kernel allocates its output.
func TestCompiledFallbackBlocks(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f, p := buildIR(t, firSrc, "dspasip", true, dynVec(), dynVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	cp := CompileProgram(prog, p)
	compiled, fallback := cp.BlockCounts()
	if compiled == 0 {
		t.Fatalf("no blocks compiled (fallback=%d): translator collapsed", fallback)
	}
	if fallback == 0 {
		t.Fatalf("expected the alloc block to fall back (compiled=%d)", compiled)
	}
	assertEnginesAgree(t, prog, p, 0, []interface{}{randArr(64, r), randArr(8, r)})
}

// TestFaultSiteParityUnderCycleLimits is the four-way fault-site
// differential: cycle limits chosen to land mid-block must produce an
// identical *FaultError (pc and text) and identical partial accounting
// under the reference engine, the prepared engine with fusion off, the
// prepared engine with a mined superinstruction set, and the compiled
// engine.
func TestFaultSiteParityUnderCycleLimits(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, procName := range []string{"dspasip", "wide8", "scalar"} {
		f, p := buildIR(t, firSrc, procName, true, dynVec(), dynVec())
		prog, err := Lower(f)
		if err != nil {
			t.Fatal(err)
		}
		args := []interface{}{randArr(64, r), randArr(8, r)}

		runCfg := func(engine string, set *SuperSet, lim int64) (*Machine, error) {
			m := NewMachine(p)
			m.Engine = engine
			m.SuperSet = set
			m.MaxCycles = lim
			_, err := m.Run(prog, cloneArgs(args)...)
			return m, err
		}

		// Learn the fault-free total, and mine a set from a profile run.
		mFull, errFull := runCfg(EngineReference, nil, 0)
		if errFull != nil {
			t.Fatalf("%s: fault-free run failed: %v", procName, errFull)
		}
		total := mFull.Cycles
		mProf := NewMachine(p)
		mProf.Engine = EnginePrepared
		mProf.SuperSet = &SuperSet{}
		mProf.Profile = true
		if _, err := mProf.Run(prog, cloneArgs(args)...); err != nil {
			t.Fatal(err)
		}
		mined := MineSuperinsts(prog, mProf.PCCounts, SuperOpts{})

		configs := []struct {
			name   string
			engine string
			set    *SuperSet
		}{
			{"prepared-off", EnginePrepared, &SuperSet{}},
			{"prepared-mined", EnginePrepared, mined},
			{"compiled", EngineCompiled, nil},
		}

		limits := []int64{1, 2, 3, 17, total / 100, total / 10, total / 3, total / 2, (9 * total) / 10, total - 1}
		faulted := 0
		for _, lim := range limits {
			if lim <= 0 {
				continue
			}
			refM, refErr := runCfg(EngineReference, nil, lim)
			var refFault *FaultError
			if errors.As(refErr, &refFault) {
				faulted++
			}
			for _, cfg := range configs {
				label := fmt.Sprintf("%s/%s limit=%d", procName, cfg.name, lim)
				m, err := runCfg(cfg.engine, cfg.set, lim)
				if (refErr == nil) != (err == nil) {
					t.Fatalf("%s: error mismatch: reference %v, got %v", label, refErr, err)
				}
				if refErr != nil {
					var fe *FaultError
					if !errors.As(err, &fe) {
						t.Fatalf("%s: err = %v, want *FaultError", label, err)
					}
					if fe.PC != refFault.PC {
						t.Errorf("%s: fault pc %d, reference faulted at pc %d", label, fe.PC, refFault.PC)
					}
					if err.Error() != refErr.Error() {
						t.Errorf("%s: fault text %q, reference %q", label, err, refErr)
					}
				}
				if m.Cycles != refM.Cycles || m.Executed != refM.Executed {
					t.Errorf("%s: cycles/executed %d/%d, reference %d/%d",
						label, m.Cycles, m.Executed, refM.Cycles, refM.Executed)
				}
				if !reflect.DeepEqual(m.ClassCounts, refM.ClassCounts) {
					t.Errorf("%s: ClassCounts %v, reference %v", label, m.ClassCounts, refM.ClassCounts)
				}
			}
		}
		if faulted < len(limits)/2 {
			t.Fatalf("%s: only %d/%d limits faulted — the sweep is not landing mid-run", procName, faulted, len(limits))
		}
	}
}

// TestCompiledProfileParity: Machine.Profile under the compiled engine
// (batched per-block counting, prefix counting on faults) must agree
// with the reference engine per pc.
func TestCompiledProfileParity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f, p := buildIR(t, firSrc, "dspasip", true, dynVec(), dynVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	args := []interface{}{randArr(256, r), randArr(16, r)}
	for _, lim := range []int64{0, 999, 12345} {
		profile := func(engine string) []int64 {
			m := NewMachine(p)
			m.Engine = engine
			m.MaxCycles = lim
			m.Profile = true
			m.Run(prog, cloneArgs(args)...) // faulting runs still profile
			return m.PCCounts
		}
		if ref, comp := profile(EngineReference), profile(EngineCompiled); !reflect.DeepEqual(ref, comp) {
			t.Errorf("limit %d: compiled per-PC profile differs from reference", lim)
		}
	}
}

// TestProcHashMemoEvictsAndUnpins pins the satellite fix for the
// processor-hash memo: with evict-one LRU replacement the memo never
// exceeds its cap, and evicted *Processor pointers become collectable
// instead of being pinned until a wholesale drop at 4096 entries.
func TestProcHashMemoEvictsAndUnpins(t *testing.T) {
	old := procHashes
	procHashes = newHashMemo[*pdesc.Processor](8)
	defer func() { procHashes = old }()

	base := pdesc.Builtin("scalar")
	var collected atomic.Int32
	for i := 0; i < 64; i++ {
		p := base.Clone()
		p.Name = fmt.Sprintf("churn%d", i)
		if _, ok := processorHash(p); !ok {
			t.Fatal("processorHash failed")
		}
		runtime.SetFinalizer(p, func(*pdesc.Processor) { collected.Add(1) })
		if n := procHashes.len(); n > 8 {
			t.Fatalf("memo holds %d entries, cap is 8", n)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for collected.Load() == 0 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if collected.Load() == 0 {
		t.Error("no evicted processor was collected: the memo still pins evicted pointers")
	}
}

// FuzzCompiledEngine runs random branchy programs (the superinstruction
// fuzzer's generator: scalar arithmetic including div faults, short
// forward/backward branches) under the compiled engine against the
// reference interpreter, with fuzzed cycle limits so faults land at
// arbitrary block offsets, comparing every observable including per-PC
// profiles.
func FuzzCompiledEngine(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{2, 7, 3, 11, 4, 200, 5, 1, 7, 0}, uint16(0))
	f.Add([]byte{0, 0, 1, 255, 2, 9, 6, 13, 7, 250, 4, 31, 5, 0}, uint16(99))
	f.Add([]byte{7, 1, 7, 2, 7, 3, 2, 2, 2, 3, 2, 4, 2, 5}, uint16(7))
	proc := pdesc.Builtin("scalar")
	f.Fuzz(func(t *testing.T, data []byte, limSeed uint16) {
		prog := fuzzProg(data)
		args := []interface{}{1.25, -0.5, int64(3)}
		maxCycles := int64(20000)
		if limSeed != 0 {
			maxCycles = int64(limSeed) // small limits fault mid-block
		}

		run := func(engine string) (*Machine, []interface{}, error) {
			m := NewMachine(proc)
			m.Engine = engine
			m.MaxCycles = maxCycles
			m.Profile = true
			out, err := m.Run(prog, cloneArgs(args)...)
			return m, out, err
		}
		mr, outR, errR := run(EngineReference)
		mc, outC, errC := run(EngineCompiled)

		if (errR == nil) != (errC == nil) {
			t.Fatalf("error mismatch: reference %v, compiled %v", errR, errC)
		}
		if errR != nil && errR.Error() != errC.Error() {
			t.Fatalf("error text mismatch:\n  reference: %v\n  compiled:  %v", errR, errC)
		}
		if mr.Cycles != mc.Cycles || mr.Executed != mc.Executed {
			t.Fatalf("cycles %d vs %d, executed %d vs %d", mr.Cycles, mc.Cycles, mr.Executed, mc.Executed)
		}
		if !reflect.DeepEqual(mr.ClassCounts, mc.ClassCounts) {
			t.Fatalf("ClassCounts %v vs %v", mr.ClassCounts, mc.ClassCounts)
		}
		if !reflect.DeepEqual(mr.PCCounts, mc.PCCounts) {
			t.Fatalf("per-PC profiles differ:\n  reference: %v\n  compiled:  %v", mr.PCCounts, mc.PCCounts)
		}
		if errR == nil {
			bitsEqResults(t, outR, outC)
		}
	})
}
