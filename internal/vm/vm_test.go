package vm

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/isel"
	"mat2c/internal/lower"
	"mat2c/internal/mlang"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
	"mat2c/internal/vectorize"
)

// buildIR compiles MATLAB source through the full middle end for the
// given processor (optionally with vectorization and isel).
func buildIR(t testing.TB, src, proc string, optimize bool, params ...sema.Type) (*ir.Func, *pdesc.Processor) {
	t.Helper()
	file, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entry := file.Funcs[0].Name
	info, err := sema.Analyze(file, entry, params)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	p := pdesc.Builtin(proc)
	if optimize {
		opt.Optimize(f, 1)
		vectorize.Apply(f, p)
		isel.Apply(f, p)
	}
	return f, p
}

func dynVec() sema.Type {
	return sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func dynCVec() sema.Type {
	return sema.Type{Class: sema.Complex, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func cloneArgs(args []interface{}) []interface{} {
	out := make([]interface{}, len(args))
	for i, a := range args {
		if arr, ok := a.(*ir.Array); ok {
			out[i] = arr.Clone()
		} else {
			out[i] = a
		}
	}
	return out
}

func nearlyEq(a, b interface{}) bool {
	switch x := a.(type) {
	case float64:
		y := b.(float64)
		return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)) || math.IsNaN(x) && math.IsNaN(y)
	case int64:
		return x == b.(int64)
	case complex128:
		y := b.(complex128)
		d := x - y
		return math.Hypot(real(d), imag(d)) <= 1e-9*(1+math.Hypot(real(x), imag(x)))
	case *ir.Array:
		y := b.(*ir.Array)
		if x.Rows != y.Rows || x.Cols != y.Cols {
			return false
		}
		for i := 0; i < x.Len(); i++ {
			d := x.At(i) - y.At(i)
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				return false
			}
		}
		return true
	}
	return false
}

// runDifferential checks VM execution against the reference evaluator.
func runDifferential(t *testing.T, f *ir.Func, p *pdesc.Processor, args []interface{}) int64 {
	t.Helper()
	prog, err := Lower(f)
	if err != nil {
		t.Fatalf("vm lower: %v\nIR:\n%s", err, ir.Print(f))
	}
	ev := &ir.Evaluator{}
	want, err := ev.Run(f, cloneArgs(args)...)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	m := NewMachine(p)
	got, err := m.Run(prog, cloneArgs(args)...)
	if err != nil {
		t.Fatalf("vm run: %v\ndisasm:\n%s", err, prog.Disasm())
	}
	if len(got) != len(want) {
		t.Fatalf("result count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !nearlyEq(want[i], got[i]) {
			t.Errorf("result %d: reference %v, vm %v", i, want[i], got[i])
		}
	}
	return m.Cycles
}

func randArr(n int, r *rand.Rand) *ir.Array {
	a := ir.NewFloatArray(1, n)
	for i := range a.F {
		a.F[i] = r.NormFloat64()
	}
	return a
}

func randCArr(n int, r *rand.Rand) *ir.Array {
	a := ir.NewComplexArray(1, n)
	for i := range a.C {
		a.C[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return a
}

// TestVMDifferential runs a battery of kernels through both executors on
// both the baseline and ASIP pipelines.
func TestVMDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	kernels := []struct {
		name   string
		src    string
		params []sema.Type
		args   func(n int) []interface{}
	}{
		{
			name: "fir",
			src: `function y = f(x, h)
n = length(x);
t = length(h);
y = zeros(1, n);
for i = t:n
    acc = 0;
    for k = 1:t
        acc = acc + h(k) * x(i - k + 1);
    end
    y(i) = acc;
end
end`,
			params: []sema.Type{dynVec(), dynVec()},
			args: func(n int) []interface{} {
				return []interface{}{randArr(n, r), randArr(4, r)}
			},
		},
		{
			name: "iir",
			src: `function y = f(x, a)
n = length(x);
y = zeros(1, n);
y(1) = x(1);
for i = 2:n
    y(i) = x(i) + a * y(i-1);
end
end`,
			params: []sema.Type{dynVec(), sema.RealScalar},
			args: func(n int) []interface{} {
				return []interface{}{randArr(n, r), 0.5}
			},
		},
		{
			name: "cdot",
			src: `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`,
			params: []sema.Type{dynCVec(), dynCVec()},
			args: func(n int) []interface{} {
				return []interface{}{randCArr(n, r), randCArr(n, r)}
			},
		},
		{
			name: "twiddle",
			src: `function w = f(n)
w = zeros(1, n);
for k = 1:n
    w(k) = exp(-2i * pi * (k - 1) / n);
end
end`,
			params: []sema.Type{sema.IntScalar},
			args:   func(n int) []interface{} { return []interface{}{int64(max(n, 1))} },
		},
		{
			name: "control",
			src: `function s = f(x)
s = 0;
i = 1;
while i <= length(x)
    if x(i) > 0
        s = s + x(i);
    elseif x(i) < -1
        s = s - 1;
    end
    if s > 100
        break
    end
    i = i + 1;
end
end`,
			params: []sema.Type{dynVec()},
			args:   func(n int) []interface{} { return []interface{}{randArr(n, r)} },
		},
		{
			name: "matmul",
			src: `function c = f(a, b)
c = a * b;
end`,
			params: []sema.Type{
				{Class: sema.Real, Shape: sema.Shape{Rows: 4, Cols: 4}},
				{Class: sema.Real, Shape: sema.Shape{Rows: 4, Cols: 4}},
			},
			args: func(n int) []interface{} {
				a := ir.NewFloatArray(4, 4)
				b := ir.NewFloatArray(4, 4)
				for i := range a.F {
					a.F[i] = r.NormFloat64()
					b.F[i] = r.NormFloat64()
				}
				return []interface{}{a, b}
			},
		},
	}
	for _, k := range kernels {
		for _, proc := range []string{"scalar", "dspasip", "wide8", "nocomplex", "nosimd"} {
			for _, optimize := range []bool{false, true} {
				for _, n := range []int{4, 7, 16, 33} {
					f, p := buildIR(t, k.src, proc, optimize, k.params...)
					args := k.args(n)
					runDifferential(t, f, p, args)
				}
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestVMCycleModelOrdering asserts the paper's central premise in the
// model: the optimized pipeline on the ASIP is cheaper than the
// baseline pipeline on the scalar target, and custom complex
// instructions beat expanded complex arithmetic.
func TestVMCycleModelOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`
	n := 512
	args := []interface{}{randCArr(n, r), randCArr(n, r)}

	base, pScalar := buildIR(t, src, "scalar", true, dynCVec(), dynCVec())
	asip, pAsip := buildIR(t, src, "dspasip", true, dynCVec(), dynCVec())
	nosimd, pNosimd := buildIR(t, src, "nosimd", true, dynCVec(), dynCVec())

	cBase := runDifferential(t, base, pScalar, args)
	cAsip := runDifferential(t, asip, pAsip, args)
	cNosimd := runDifferential(t, nosimd, pNosimd, args)

	if cAsip >= cBase {
		t.Errorf("ASIP (%d cycles) not faster than baseline (%d)", cAsip, cBase)
	}
	if cNosimd >= cBase {
		t.Errorf("complex ISA only (%d cycles) not faster than baseline (%d)", cNosimd, cBase)
	}
	if cAsip >= cNosimd {
		t.Errorf("SIMD+complex (%d) not faster than complex-only (%d)", cAsip, cNosimd)
	}
	speedup := float64(cBase) / float64(cAsip)
	if speedup < 2 {
		t.Errorf("complex dot speedup %.2fx below the paper's 2x low bound", speedup)
	}
	t.Logf("cdot n=%d: baseline=%d nosimd=%d asip=%d speedup=%.1fx", n, cBase, cNosimd, cAsip, speedup)
}

// TestVMVectorizationReducesCycles checks SIMD benefit on a plain float
// kernel (no complex instructions involved).
func TestVMVectorizationReducesCycles(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	src := `function y = f(a, b)
n = length(a);
y = zeros(1, n);
for i = 1:n
    y(i) = a(i) * b(i) + a(i);
end
end`
	n := 1024
	args := []interface{}{randArr(n, r), randArr(n, r)}
	base, pScalar := buildIR(t, src, "scalar", true, dynVec(), dynVec())
	asip, pAsip := buildIR(t, src, "dspasip", true, dynVec(), dynVec())
	wide, pWide := buildIR(t, src, "wide8", true, dynVec(), dynVec())

	cBase := runDifferential(t, base, pScalar, args)
	cAsip := runDifferential(t, asip, pAsip, args)
	cWide := runDifferential(t, wide, pWide, args)
	if !(cWide < cAsip && cAsip < cBase) {
		t.Errorf("expected wide8 < dspasip < scalar, got %d / %d / %d", cWide, cAsip, cBase)
	}
	t.Logf("saxpy-like n=%d: scalar=%d w4=%d w8=%d", n, cBase, cAsip, cWide)
}

func TestVMStaticCodeSize(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`
	base, _ := buildIR(t, src, "scalar", true, dynCVec(), dynCVec())
	asip, _ := buildIR(t, src, "dspasip", true, dynCVec(), dynCVec())
	pb, err := Lower(base)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := Lower(asip)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Len() == 0 || pa.Len() == 0 {
		t.Fatal("empty programs")
	}
	t.Logf("code size: scalar=%d asip=%d", pb.Len(), pa.Len())
}

func TestVMFaults(t *testing.T) {
	src := `function y = f(x)
y = x(10);
end`
	f, p := buildIR(t, src, "scalar", false, dynVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	_, err = m.Run(prog, ir.NewFloatArray(1, 3))
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("got %v, want out-of-bounds fault", err)
	}
}

func TestVMCycleLimit(t *testing.T) {
	src := `function y = f()
y = 0;
while 1 > 0
    y = y + 1;
end
end`
	f, p := buildIR(t, src, "scalar", false)
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	m.MaxCycles = 10000
	_, err = m.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Errorf("got %v, want cycle-limit fault", err)
	}
}

func TestVMArgErrors(t *testing.T) {
	src := "function y = f(a, b)\ny = a + b(1);\nend"
	f, p := buildIR(t, src, "scalar", false, sema.RealScalar, dynVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if _, err := m.Run(prog, 1.0); err == nil {
		t.Error("expected arity error")
	}
	if _, err := m.Run(prog, 1.0, 2.0); err == nil {
		t.Error("expected array/scalar mismatch error")
	}
	if _, err := m.Run(prog, ir.NewFloatArray(1, 2), ir.NewFloatArray(1, 2)); err == nil {
		t.Error("expected scalar/array mismatch error")
	}
	if _, err := m.Run(prog, 1.0, ir.NewComplexArray(1, 2)); err == nil {
		t.Error("expected elem kind mismatch error")
	}
}

func TestVMDisasmStable(t *testing.T) {
	src := "function y = f(a)\ny = a * 2 + 1;\nend"
	f, _ := buildIR(t, src, "scalar", false, sema.RealScalar)
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Disasm()
	if !strings.Contains(d, "ret") || !strings.Contains(d, "program f") {
		t.Errorf("unexpected disasm:\n%s", d)
	}
}

func TestVMClassCounts(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`
	f, p := buildIR(t, src, "dspasip", true, dynCVec(), dynCVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	r := rand.New(rand.NewSource(3))
	if _, err := m.Run(prog, randCArr(64, r), randCArr(64, r)); err != nil {
		t.Fatal(err)
	}
	if m.ClassCounts["vcconjmul"] == 0 && m.ClassCounts["vcmac"] == 0 {
		t.Errorf("expected vector complex intrinsics to execute, got %v", m.ClassCounts)
	}
	if m.Executed == 0 || m.Cycles == 0 {
		t.Error("no execution accounting")
	}
}

// TestPeepholeRemovesMovs checks the mov-after-compute cleanup: the
// lowered program must contain no removable producer/mov pairs, and a
// representative kernel must shrink versus the unoptimized emission.
func TestPeepholeRemovesMovs(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * b(i);
end
end`
	f, p := buildIR(t, src, "dspasip", true, dynVec(), dynVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("peepholed program invalid: %v\n%s", err, prog.Disasm())
	}
	// Idempotence: a second pass finds nothing.
	before := len(prog.Instrs)
	peephole(prog, nil)
	if n := before - len(prog.Instrs); n != 0 {
		t.Errorf("second peephole pass removed %d more instructions", n)
	}
	// And it still computes the right value.
	m := NewMachine(p)
	r := rand.New(rand.NewSource(8))
	a, b := randArr(37, r), randArr(37, r)
	want := 0.0
	for i := range a.F {
		want += a.F[i] * b.F[i]
	}
	out, err := m.Run(prog, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].(float64); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("got %v, want %v", got, want)
	}
}

// TestVMAliasedArgumentsCloned: passing the same array for two
// parameters must behave like MATLAB's value semantics (no aliasing).
func TestVMAliasedArgumentsCloned(t *testing.T) {
	src := `function y = f(x, g)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = g(i);
end
x(1) = 99;
end`
	// Note: x is written, so with aliasing g(1) could read 99.
	f, p := buildIR(t, `function [x, s] = f(x, g)
x(1) = 99;
s = g(1);
end`, "scalar", false, dynVec(), dynVec())
	_ = src
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	shared := ir.NewFloatArray(1, 4)
	shared.F[0] = 7
	m := NewMachine(p)
	out, err := m.Run(prog, shared, shared)
	if err != nil {
		t.Fatal(err)
	}
	if got := out[1].(float64); got != 7 {
		t.Errorf("g(1) read %v through aliasing, want 7", got)
	}
}

// TestVMDisasmCoversNewOpcodes checks the disassembler renders the
// vectorizer-era opcodes (select, strided vload, ramp, splat, reduce).
func TestVMDisasmCoversNewOpcodes(t *testing.T) {
	src := `function [y, s] = f(x, m)
y = zeros(1, m);
s = 0;
for i = 1:m
    y(i) = x(2 * i) + i;
    if x(i) > 0
        s = s + x(i);
    end
end
end`
	f, _ := buildIR(t, src, "dspasip", true, dynVec(), sema.IntScalar)
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Disasm()
	for _, want := range []string{"sel.", "vload.", "ramp.", "splat.", "reduce_"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}
