package vm

import (
	"math/rand"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
)

// TestVMValidateLoweredPrograms validates every lowered benchmark-ish
// program structurally.
func TestVMValidateLoweredPrograms(t *testing.T) {
	srcs := []struct {
		src    string
		params []interface{}
	}{}
	_ = srcs
	f, _ := buildIR(t, `function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(i) * 2;
end
end`, "dspasip", true, dynVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("lowered program invalid: %v", err)
	}
}

func TestVMValidateCatchesCorruption(t *testing.T) {
	f, _ := buildIR(t, "function y = f(a)\ny = a + 1;\nend", "scalar", false,
		sema.RealScalar)
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *prog
	bad.Instrs = append([]Instr(nil), prog.Instrs...)
	bad.Instrs[0].Dst = 9999
	if bad.Instrs[0].Op == OpJmp || bad.Instrs[0].Op == OpRet {
		t.Skip("first instruction has no Dst")
	}
	if err := bad.Validate(); err == nil {
		t.Error("corrupted register not caught")
	}
	bad2 := *prog
	bad2.Instrs = append([]Instr(nil), prog.Instrs...)
	for i := range bad2.Instrs {
		if bad2.Instrs[i].Op == OpJz || bad2.Instrs[i].Op == OpJmp {
			bad2.Instrs[i].Off = len(bad2.Instrs) + 5
			if err := bad2.Validate(); err == nil {
				t.Error("corrupted branch target not caught")
			}
			break
		}
	}
}

// ----- random expression differential testing -----

// genExpr builds a random scalar float IR expression over the given
// parameter symbols, with bounded depth and only total operations (no
// div/rem to avoid zero-denominator noise).
func genExpr(r *rand.Rand, params []*ir.Sym, depth int) ir.Expr {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return ir.CF(float64(r.Intn(9)) - 4)
		default:
			return ir.V(params[r.Intn(len(params))])
		}
	}
	switch r.Intn(8) {
	case 0, 1, 2:
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpMin, ir.OpMax}
		return &ir.Bin{Op: ops[r.Intn(len(ops))], K: ir.KFloat,
			X: genExpr(r, params, depth-1), Y: genExpr(r, params, depth-1)}
	case 3:
		ops := []ir.Op{ir.OpNeg, ir.OpAbs, ir.OpSin, ir.OpCos, ir.OpTanh,
			ir.OpAtan, ir.OpFloor, ir.OpCeil, ir.OpSign}
		return &ir.Un{Op: ops[r.Intn(len(ops))], K: ir.KFloat,
			X: genExpr(r, params, depth-1)}
	case 4:
		return &ir.Bin{Op: ir.OpAtan2, K: ir.KFloat,
			X: genExpr(r, params, depth-1), Y: genExpr(r, params, depth-1)}
	case 5:
		// Comparison feeding arithmetic through a conversion.
		cmp := &ir.Bin{Op: ir.OpLt, K: ir.KInt,
			X: genExpr(r, params, depth-1), Y: genExpr(r, params, depth-1)}
		return ir.U(ir.OpToFloat, cmp, ir.KFloat)
	default:
		return &ir.Bin{Op: ir.OpAdd, K: ir.KFloat,
			X: genExpr(r, params, depth-1), Y: genExpr(r, params, depth-1)}
	}
}

// TestVMRandomExprDifferential builds hundreds of random scalar
// expressions and checks the VM computes exactly what the reference
// evaluator computes.
func TestVMRandomExprDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	proc := pdesc.Builtin("dspasip")
	for trial := 0; trial < 400; trial++ {
		f := ir.NewFunc("rnd")
		a := f.NewSym("a", ir.Float, false)
		b := f.NewSym("b", ir.Float, false)
		c := f.NewSym("c", ir.Float, false)
		y := f.NewSym("y", ir.Float, false)
		f.Params = []*ir.Sym{a, b, c}
		f.Results = []*ir.Sym{y}
		f.Body = []ir.Stmt{&ir.Assign{Dst: y, Src: genExpr(r, f.Params, 5)}}

		args := []interface{}{r.NormFloat64() * 3, r.NormFloat64() * 3, r.NormFloat64() * 3}

		ev := &ir.Evaluator{}
		want, err := ev.Run(f, args...)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		prog, err := Lower(f)
		if err != nil {
			t.Fatalf("trial %d: lower: %v", trial, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("trial %d: validate: %v", trial, err)
		}
		m := NewMachine(proc)
		got, err := m.Run(prog, args...)
		if err != nil {
			t.Fatalf("trial %d: vm: %v", trial, err)
		}
		if !nearlyEq(want[0], got[0]) {
			t.Errorf("trial %d: reference %v, vm %v\nIR: %s",
				trial, want[0], got[0], ir.ExprStr(f.Body[0].(*ir.Assign).Src))
		}
	}
}
