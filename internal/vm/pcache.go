package vm

import (
	"container/list"
	"sync"

	"mat2c/internal/pdesc"
)

// The prepared-program cache.
//
// Preparation is cheap relative to compilation but not free (a cost
// table, a pre-decoded instruction array, dense ID resolution), and the
// workloads this repo cares about — benchtab sweeps, DSE exploration,
// the compile-and-simulate service — run the same program on the same
// processor thousands of times. PreparedFor memoizes preparations in a
// bounded LRU keyed by (program content hash, processor content hash),
// composing with the content-addressed compile cache one layer up:
// a compile-cache hit returns a pointer-identical Program whose
// ContentHash is already memoized, so the prepared lookup is two string
// map probes.

// DefaultPreparedCacheSize bounds the process-wide prepared-program
// cache (entries, not bytes; a prepared program is a few KiB).
const DefaultPreparedCacheSize = 256

type preparedKey struct {
	prog string // Program.ContentHash
	proc string // Processor.ContentHash
}

type preparedEntry struct {
	key preparedKey
	pp  *PreparedProgram
}

var prepCache = struct {
	sync.Mutex
	entries map[preparedKey]*list.Element
	order   *list.List // front = most recently used
	cap     int
	hits    uint64
	misses  uint64
}{
	entries: make(map[preparedKey]*list.Element),
	order:   list.New(),
	cap:     DefaultPreparedCacheSize,
}

// procHashes memoizes Processor.ContentHash per pointer: DSE sweeps
// derive hundreds of distinct descriptions, but each one is a single
// long-lived pointer hashed exactly once. Bounded defensively; on
// overflow the memo is dropped wholesale (re-hashing is cheap).
var procHashes = struct {
	sync.Mutex
	m map[*pdesc.Processor]string
}{m: make(map[*pdesc.Processor]string)}

const procHashMemoCap = 4096

func processorHash(p *pdesc.Processor) (string, bool) {
	procHashes.Lock()
	if h, ok := procHashes.m[p]; ok {
		procHashes.Unlock()
		return h, true
	}
	procHashes.Unlock()
	h, err := p.ContentHash()
	if err != nil {
		return "", false
	}
	procHashes.Lock()
	if len(procHashes.m) >= procHashMemoCap {
		procHashes.m = make(map[*pdesc.Processor]string)
	}
	procHashes.m[p] = h
	procHashes.Unlock()
	return h, true
}

// PreparedFor returns the prepared form of prog for proc, consulting
// the process-wide cache. Programs and processors are content-hashed,
// so DSE variants with identical descriptions share one preparation
// regardless of pointer identity. Both values must be treated as
// immutable after this call. Safe for concurrent use.
func PreparedFor(prog *Program, proc *pdesc.Processor) *PreparedProgram {
	ph, ok := processorHash(proc)
	if !ok {
		// Unhashable description (should not happen): prepare uncached.
		return Prepare(prog, proc)
	}
	key := preparedKey{prog: prog.ContentHash(), proc: ph}

	prepCache.Lock()
	if el, ok := prepCache.entries[key]; ok {
		prepCache.order.MoveToFront(el)
		prepCache.hits++
		pp := el.Value.(*preparedEntry).pp
		prepCache.Unlock()
		return pp
	}
	prepCache.misses++
	prepCache.Unlock()

	// Prepare outside the lock; concurrent misses on the same key do
	// duplicate work once, and the last insert wins — both results are
	// equivalent by construction.
	pp := Prepare(prog, proc)

	prepCache.Lock()
	if el, ok := prepCache.entries[key]; ok {
		prepCache.order.MoveToFront(el)
		pp = el.Value.(*preparedEntry).pp
	} else {
		el := prepCache.order.PushFront(&preparedEntry{key: key, pp: pp})
		prepCache.entries[key] = el
		for prepCache.order.Len() > prepCache.cap {
			old := prepCache.order.Back()
			prepCache.order.Remove(old)
			delete(prepCache.entries, old.Value.(*preparedEntry).key)
		}
	}
	prepCache.Unlock()
	return pp
}

// PreparedCacheInfo is a point-in-time snapshot of the prepared-program
// cache, exported for service metrics and tooling.
type PreparedCacheInfo struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// PreparedCacheStats reports cache occupancy and hit/miss counters.
func PreparedCacheStats() PreparedCacheInfo {
	prepCache.Lock()
	defer prepCache.Unlock()
	return PreparedCacheInfo{
		Entries:  prepCache.order.Len(),
		Capacity: prepCache.cap,
		Hits:     prepCache.hits,
		Misses:   prepCache.misses,
	}
}

// ResetPreparedCache empties the prepared-program cache and its
// counters (used by tests and benchmarks to measure cold paths).
func ResetPreparedCache() {
	prepCache.Lock()
	prepCache.entries = make(map[preparedKey]*list.Element)
	prepCache.order = list.New()
	prepCache.hits = 0
	prepCache.misses = 0
	prepCache.Unlock()

	procHashes.Lock()
	procHashes.m = make(map[*pdesc.Processor]string)
	procHashes.Unlock()
}
