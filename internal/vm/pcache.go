package vm

import (
	"container/list"
	"sync"

	"mat2c/internal/pdesc"
)

// The prepared-program cache.
//
// Preparation is cheap relative to compilation but not free (a cost
// table, a pre-decoded instruction array, dense ID resolution), and the
// workloads this repo cares about — benchtab sweeps, DSE exploration,
// the compile-and-simulate service — run the same program on the same
// processor thousands of times. PreparedFor memoizes preparations in a
// bounded LRU keyed by (program content hash, processor content hash,
// superinstruction-set tag), composing with the content-addressed
// compile cache one layer up: a compile-cache hit returns a
// pointer-identical Program whose ContentHash is already memoized, so
// the prepared lookup is two string map probes. The set tag keeps
// preparations with different fusion sets from aliasing one another:
// "" is the plain PR 3 decode, "static/v1" the process-default pair
// fusion (a pure function of the program), and "mined/<hash>" an
// explicit set keyed by its content.

// DefaultPreparedCacheSize bounds the process-wide prepared-program
// cache (entries, not bytes; a prepared program is a few KiB).
const DefaultPreparedCacheSize = 256

type preparedKey struct {
	prog string // Program.ContentHash
	proc string // Processor.ContentHash
	set  string // superinstruction-set tag ("", "static/v1", "mined/<hash>")
}

type preparedEntry struct {
	key preparedKey
	pp  *PreparedProgram
}

var prepCache = struct {
	sync.Mutex
	entries map[preparedKey]*list.Element
	order   *list.List // front = most recently used
	cap     int
	hits    uint64
	misses  uint64
}{
	entries: make(map[preparedKey]*list.Element),
	order:   list.New(),
	cap:     DefaultPreparedCacheSize,
}

// procHashes memoizes Processor.ContentHash per pointer: DSE sweeps
// derive hundreds of distinct descriptions, but each one is a single
// long-lived pointer hashed exactly once. Bounded defensively; on
// overflow the memo is dropped wholesale (re-hashing is cheap).
var procHashes = struct {
	sync.Mutex
	m map[*pdesc.Processor]string
}{m: make(map[*pdesc.Processor]string)}

const procHashMemoCap = 4096

func processorHash(p *pdesc.Processor) (string, bool) {
	procHashes.Lock()
	if h, ok := procHashes.m[p]; ok {
		procHashes.Unlock()
		return h, true
	}
	procHashes.Unlock()
	h, err := p.ContentHash()
	if err != nil {
		return "", false
	}
	procHashes.Lock()
	if len(procHashes.m) >= procHashMemoCap {
		procHashes.m = make(map[*pdesc.Processor]string)
	}
	procHashes.m[p] = h
	procHashes.Unlock()
	return h, true
}

// PreparedFor returns the prepared form of prog for proc under the
// process-default superinstruction policy, consulting the process-wide
// cache. Programs and processors are content-hashed, so DSE variants
// with identical descriptions share one preparation regardless of
// pointer identity. Both values must be treated as immutable after
// this call. Safe for concurrent use.
func PreparedFor(prog *Program, proc *pdesc.Processor) *PreparedProgram {
	if SuperinstEnabled() {
		return preparedCached(prog, proc, nil, superTagStatic)
	}
	return preparedCached(prog, proc, nil, "")
}

// PreparedForSet is PreparedFor with an explicit superinstruction set
// (nil or empty = fusion off regardless of the process default). The
// set is content-hashed into the cache key, so distinct sets — and the
// policy-default preparations — never alias.
func PreparedForSet(prog *Program, proc *pdesc.Processor, set *SuperSet) *PreparedProgram {
	if set == nil || len(set.Ranges) == 0 {
		return preparedCached(prog, proc, nil, "")
	}
	return preparedCached(prog, proc, set, "mined/"+set.Hash())
}

// prepareTagged materializes the preparation a (set, tag) pair denotes:
// the static pair set is derived from the program on demand so the
// cache key stays content-free.
func prepareTagged(prog *Program, proc *pdesc.Processor, set *SuperSet, tag string) *PreparedProgram {
	if set == nil && tag == superTagStatic {
		set = StaticSuperinsts(prog)
	}
	return PrepareSuper(prog, proc, set)
}

func preparedCached(prog *Program, proc *pdesc.Processor, set *SuperSet, tag string) *PreparedProgram {
	ph, ok := processorHash(proc)
	if !ok {
		// Unhashable description (should not happen): prepare uncached.
		return prepareTagged(prog, proc, set, tag)
	}
	key := preparedKey{prog: prog.ContentHash(), proc: ph, set: tag}

	prepCache.Lock()
	if el, ok := prepCache.entries[key]; ok {
		prepCache.order.MoveToFront(el)
		prepCache.hits++
		pp := el.Value.(*preparedEntry).pp
		prepCache.Unlock()
		return pp
	}
	prepCache.misses++
	prepCache.Unlock()

	// Prepare outside the lock; concurrent misses on the same key do
	// duplicate work once, and the last insert wins — both results are
	// equivalent by construction.
	pp := prepareTagged(prog, proc, set, tag)

	prepCache.Lock()
	if el, ok := prepCache.entries[key]; ok {
		prepCache.order.MoveToFront(el)
		pp = el.Value.(*preparedEntry).pp
	} else {
		el := prepCache.order.PushFront(&preparedEntry{key: key, pp: pp})
		prepCache.entries[key] = el
		for prepCache.order.Len() > prepCache.cap {
			old := prepCache.order.Back()
			prepCache.order.Remove(old)
			delete(prepCache.entries, old.Value.(*preparedEntry).key)
		}
	}
	prepCache.Unlock()
	return pp
}

// PreparedCacheInfo is a point-in-time snapshot of the prepared-program
// cache, exported for service metrics and tooling.
type PreparedCacheInfo struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// PreparedCacheStats reports cache occupancy and hit/miss counters.
func PreparedCacheStats() PreparedCacheInfo {
	prepCache.Lock()
	defer prepCache.Unlock()
	return PreparedCacheInfo{
		Entries:  prepCache.order.Len(),
		Capacity: prepCache.cap,
		Hits:     prepCache.hits,
		Misses:   prepCache.misses,
	}
}

// ResetPreparedCache empties the prepared-program cache and its
// counters (used by tests and benchmarks to measure cold paths).
func ResetPreparedCache() {
	prepCache.Lock()
	prepCache.entries = make(map[preparedKey]*list.Element)
	prepCache.order = list.New()
	prepCache.hits = 0
	prepCache.misses = 0
	prepCache.Unlock()

	procHashes.Lock()
	procHashes.m = make(map[*pdesc.Processor]string)
	procHashes.Unlock()
}
