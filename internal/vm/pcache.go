package vm

import (
	"container/list"
	"sync"

	"mat2c/internal/pdesc"
)

// The prepared-program cache.
//
// Preparation is cheap relative to compilation but not free (a cost
// table, a pre-decoded instruction array, dense ID resolution), and the
// workloads this repo cares about — benchtab sweeps, DSE exploration,
// the compile-and-simulate service — run the same program on the same
// processor thousands of times. PreparedFor memoizes preparations in a
// bounded LRU keyed by (program content hash, processor content hash,
// superinstruction-set tag), composing with the content-addressed
// compile cache one layer up: a compile-cache hit returns a
// pointer-identical Program whose ContentHash is already memoized, so
// the prepared lookup is two string map probes. The set tag keeps
// preparations with different fusion sets from aliasing one another:
// "" is the plain PR 3 decode, "static/v1" the process-default pair
// fusion (a pure function of the program), and "mined/<hash>" an
// explicit set keyed by its content.

// DefaultPreparedCacheSize bounds the process-wide prepared-program
// cache (entries, not bytes; a prepared program is a few KiB).
const DefaultPreparedCacheSize = 256

type preparedKey struct {
	prog    string // Program.ContentHash
	proc    string // Processor.ContentHash
	set     string // superinstruction-set tag ("", "static/v1", "mined/<hash>")
	backend string // "" = prepared decode, backendCompiled = closure translation
}

type preparedEntry struct {
	key preparedKey
	pp  *PreparedProgram
	cp  *CompiledProgram // non-nil only for backend == backendCompiled entries
}

var prepCache = struct {
	sync.Mutex
	entries map[preparedKey]*list.Element
	order   *list.List // front = most recently used
	cap     int
	hits    uint64
	misses  uint64
}{
	entries: make(map[preparedKey]*list.Element),
	order:   list.New(),
	cap:     DefaultPreparedCacheSize,
}

// hashMemo is a bounded pointer-keyed content-hash memo with evict-one
// LRU replacement. The previous design kept up to cap pointers forever
// and then dropped the memo wholesale on overflow — which both pinned
// every memoized *Processor/*Program against collection in a long-lived
// mat2cd under DSE churn, and produced a latency cliff when the 4097th
// distinct pointer threw away 4096 warm entries at once. Evicting the
// least-recently-used single entry keeps the working set warm and lets
// retired sweep variants become collectable as new ones push them out.
type hashMemo[K comparable] struct {
	mu      sync.Mutex
	entries map[K]*list.Element
	order   *list.List // front = most recently used
	cap     int
}

type hashMemoEntry[K comparable] struct {
	key K
	h   string
}

func newHashMemo[K comparable](cap int) *hashMemo[K] {
	return &hashMemo[K]{
		entries: make(map[K]*list.Element),
		order:   list.New(),
		cap:     cap,
	}
}

func (m *hashMemo[K]) get(k K) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[k]; ok {
		m.order.MoveToFront(el)
		return el.Value.(*hashMemoEntry[K]).h, true
	}
	return "", false
}

func (m *hashMemo[K]) put(k K, h string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[k]; ok {
		m.order.MoveToFront(el)
		return
	}
	m.entries[k] = m.order.PushFront(&hashMemoEntry[K]{key: k, h: h})
	for m.order.Len() > m.cap {
		old := m.order.Back()
		m.order.Remove(old)
		delete(m.entries, old.Value.(*hashMemoEntry[K]).key)
	}
}

func (m *hashMemo[K]) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

func (m *hashMemo[K]) reset() {
	m.mu.Lock()
	m.entries = make(map[K]*list.Element)
	m.order = list.New()
	m.mu.Unlock()
}

// procHashes memoizes Processor.ContentHash per pointer: DSE sweeps
// derive hundreds of distinct descriptions, but each one is a single
// long-lived pointer hashed exactly once.
var procHashes = newHashMemo[*pdesc.Processor](procHashMemoCap)

const procHashMemoCap = 4096

func processorHash(p *pdesc.Processor) (string, bool) {
	if h, ok := procHashes.get(p); ok {
		return h, true
	}
	h, err := p.ContentHash()
	if err != nil {
		return "", false
	}
	procHashes.put(p, h)
	return h, true
}

// PreparedFor returns the prepared form of prog for proc under the
// process-default superinstruction policy, consulting the process-wide
// cache. Programs and processors are content-hashed, so DSE variants
// with identical descriptions share one preparation regardless of
// pointer identity. Both values must be treated as immutable after
// this call. Safe for concurrent use.
func PreparedFor(prog *Program, proc *pdesc.Processor) *PreparedProgram {
	if SuperinstEnabled() {
		return preparedCached(prog, proc, nil, superTagStatic)
	}
	return preparedCached(prog, proc, nil, "")
}

// PreparedForSet is PreparedFor with an explicit superinstruction set
// (nil or empty = fusion off regardless of the process default). The
// set is content-hashed into the cache key, so distinct sets — and the
// policy-default preparations — never alias.
func PreparedForSet(prog *Program, proc *pdesc.Processor, set *SuperSet) *PreparedProgram {
	if set == nil || len(set.Ranges) == 0 {
		return preparedCached(prog, proc, nil, "")
	}
	return preparedCached(prog, proc, set, "mined/"+set.Hash())
}

// prepareTagged materializes the preparation a (set, tag) pair denotes:
// the static pair set is derived from the program on demand so the
// cache key stays content-free.
func prepareTagged(prog *Program, proc *pdesc.Processor, set *SuperSet, tag string) *PreparedProgram {
	if set == nil && tag == superTagStatic {
		set = StaticSuperinsts(prog)
	}
	return PrepareSuper(prog, proc, set)
}

func preparedCached(prog *Program, proc *pdesc.Processor, set *SuperSet, tag string) *PreparedProgram {
	ph, ok := processorHash(proc)
	if !ok {
		// Unhashable description (should not happen): prepare uncached.
		return prepareTagged(prog, proc, set, tag)
	}
	key := preparedKey{prog: prog.ContentHash(), proc: ph, set: tag}

	if e, ok := cacheGet(key); ok {
		return e.pp
	}
	// Prepare outside the lock; concurrent misses on the same key do
	// duplicate work once, and the first insert wins — both results are
	// equivalent by construction.
	pp := prepareTagged(prog, proc, set, tag)
	return cacheInsert(key, &preparedEntry{key: key, pp: pp}).pp
}

// cacheGet probes the prepared-program cache, promoting and counting a
// hit, or counting a miss.
func cacheGet(key preparedKey) (*preparedEntry, bool) {
	prepCache.Lock()
	defer prepCache.Unlock()
	if el, ok := prepCache.entries[key]; ok {
		prepCache.order.MoveToFront(el)
		prepCache.hits++
		return el.Value.(*preparedEntry), true
	}
	prepCache.misses++
	return nil, false
}

// cacheInsert installs e under key unless a concurrent insert already
// won the race, and returns the entry that ended up cached.
func cacheInsert(key preparedKey, e *preparedEntry) *preparedEntry {
	prepCache.Lock()
	defer prepCache.Unlock()
	if el, ok := prepCache.entries[key]; ok {
		prepCache.order.MoveToFront(el)
		return el.Value.(*preparedEntry)
	}
	prepCache.entries[key] = prepCache.order.PushFront(e)
	for prepCache.order.Len() > prepCache.cap {
		old := prepCache.order.Back()
		prepCache.order.Remove(old)
		delete(prepCache.entries, old.Value.(*preparedEntry).key)
	}
	return e
}

// PreparedCacheInfo is a point-in-time snapshot of the prepared-program
// cache, exported for service metrics and tooling.
type PreparedCacheInfo struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// PreparedCacheStats reports cache occupancy and hit/miss counters.
func PreparedCacheStats() PreparedCacheInfo {
	prepCache.Lock()
	defer prepCache.Unlock()
	return PreparedCacheInfo{
		Entries:  prepCache.order.Len(),
		Capacity: prepCache.cap,
		Hits:     prepCache.hits,
		Misses:   prepCache.misses,
	}
}

// ResetPreparedCache empties the prepared-program cache and its
// counters (used by tests and benchmarks to measure cold paths).
func ResetPreparedCache() {
	prepCache.Lock()
	prepCache.entries = make(map[preparedKey]*list.Element)
	prepCache.order = list.New()
	prepCache.hits = 0
	prepCache.misses = 0
	prepCache.Unlock()

	procHashes.reset()
}
