package vm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
)

// Dynamic superinstructions.
//
// PR 3's prepared engine left one dominant cost in the hot loop: per-op
// dispatch and bookkeeping (the context-poll branch, the cycle-limit
// check, executed++, and the three accounting stores). A
// superinstruction collapses a straight-line run of 2–8 instructions
// into a single dispatch unit: one switch hit executes every member
// through a semantics-only inner interpreter, then cycles, executed,
// and the dense class counters are updated once with totals aggregated
// at prepare time.
//
// The sequences come from two sources. MineSuperinsts weights candidate
// runs by Machine.Profile per-PC execution counts (the same counts the
// isx miner uses), so hot loop bodies fuse and cold code does not.
// StaticSuperinsts is the cold-program fallback: it fuses
// unconditionally-sequential op pairs, which is the process-default
// policy applied by PreparedFor whenever superinstructions are enabled.
//
// Cycle-exactness is preserved by construction:
//   - A range never crosses a basic-block boundary (no control flow
//     inside, no branch target into the interior), so a fused unit is
//     all-or-nothing on the happy path.
//   - Ops whose charge depends on runtime state (OpAlloc's zero-fill)
//     or that always fault (OpIntr with a prepared fault prefix) are
//     not fuseable; such ranges are dropped at fuse time.
//   - The fast path only runs when the whole unit fits under the cycle
//     limit; otherwise a slow path steps the members one at a time with
//     exactly the reference engine's limit-check/charge ordering.
//   - A member fault replays the completed prefix's charges (honoring
//     each opcode's charge-before-or-after-fault placement) and reports
//     the member's own pc, so fault text, Cycles, Executed, and
//     ClassCounts match the unfused run bit for bit.
//
// The differential suite (prepared_test.go, bench/engine_diff_test.go)
// and FuzzSuperinstMiner enforce all of this against the reference
// engine.

// Superinstruction sequence length bounds. Longer runs are chunked at
// MaxSuperLen; a "sequence" of one instruction is just the instruction.
const (
	MinSuperLen = 2
	MaxSuperLen = 8
)

// superTagStatic is the prepared-cache set tag for the process-default
// static pair fusion. The static set is a pure function of the program,
// so the tag needs no content hash.
const superTagStatic = "static/v1"

// superinstOff is the process-wide disable flag (zero value = enabled,
// so the default policy is on). Initialized from $MAT2C_VM_SUPERINST
// and adjustable via SetSuperinstEnabled.
var superinstOff atomic.Bool

func init() {
	switch strings.ToLower(os.Getenv("MAT2C_VM_SUPERINST")) {
	case "0", "false", "off", "no":
		superinstOff.Store(true)
	}
}

// SetSuperinstEnabled toggles the process-default superinstruction
// policy: when enabled (the default), PreparedFor fuses the static pair
// set into every prepared program; when disabled it prepares plain
// PR 3-style programs. Machines with an explicit SuperSet are
// unaffected.
func SetSuperinstEnabled(on bool) { superinstOff.Store(!on) }

// SuperinstEnabled reports the process-default superinstruction policy.
func SuperinstEnabled() bool { return !superinstOff.Load() }

// SeqRange is one superinstruction candidate: the half-open instruction
// range [Start, End) of the unfused Program.
type SeqRange struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// SuperSet is a set of superinstruction sequences for one Program.
// Ranges that overlap, cross control flow, or contain unfuseable
// members are dropped at prepare time (first range wins on overlap);
// the zero value / an empty set disables fusion entirely.
type SuperSet struct {
	Ranges []SeqRange `json:"ranges"`
}

// Hash returns a content hash of the range list, used to key the
// prepared-program cache so distinct sets never alias one preparation.
func (s *SuperSet) Hash() string {
	h := sha256.New()
	var buf [8]byte
	for _, r := range s.Ranges {
		binary.LittleEndian.PutUint32(buf[:4], uint32(r.Start))
		binary.LittleEndian.PutUint32(buf[4:], uint32(r.End))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SuperOpts tunes the superinstruction miner. The zero value means
// defaults: sequences of MinSuperLen..MaxSuperLen, any observed
// execution count, no sequence-count cap.
type SuperOpts struct {
	// MaxLen / MinLen bound sequence length (clamped to
	// [MinSuperLen, MaxSuperLen]).
	MaxLen int
	MinLen int
	// MinCount drops sequences whose minimum per-PC execution count is
	// below this threshold (0 = keep any sequence that executed).
	MinCount int64
	// MaxSeqs keeps only the best-weighted sequences (0 = unlimited).
	// Weight is minCount × (len−1): dynamic dispatches saved.
	MaxSeqs int
}

func (o SuperOpts) withDefaults() SuperOpts {
	if o.MaxLen <= 0 || o.MaxLen > MaxSuperLen {
		o.MaxLen = MaxSuperLen
	}
	if o.MinLen < MinSuperLen {
		o.MinLen = MinSuperLen
	}
	if o.MaxLen < o.MinLen {
		o.MaxLen = o.MinLen
	}
	if o.MinCount < 1 {
		o.MinCount = 1
	}
	return o
}

// fuseableInstr reports whether a program instruction may be an
// interior superinstruction member, judged on static properties alone.
// Control flow ends a sequence (though a basic block's own terminating
// OpJmp/OpJz may close a unit as its final member — see branchTail);
// OpAlloc's zero-fill charge depends on the runtime extent, so batched
// accounting cannot pre-aggregate it. Processor-dependent exclusions
// (intrinsics the target does not provide) are re-checked per
// preparation in fuseSuperinsts.
func fuseableInstr(in *Instr) bool {
	switch in.Op {
	case OpJmp, OpJz, OpRet, OpAlloc:
		return false
	case OpNop, OpConst, OpMov, OpConv, OpBin, OpUn, OpIntr, OpLoad,
		OpVLoad, OpStore, OpDim, OpSel, OpSplat, OpRamp, OpReduce:
		return true
	}
	return false
}

// branchTail reports whether an opcode may terminate a fused unit. A
// basic block ends with its branch; fusing the block's own terminator
// into the unit stays within the block and turns a hot loop body into
// a single dispatch per iteration. OpRet is excluded (it ends the run,
// so there is no dispatch to save).
func branchTail(op Opc) bool {
	return op == OpJmp || op == OpJz
}

// blockLeaders marks every pc that starts a basic block: entry, branch
// targets, and fallthrough successors of control flow. A sequence may
// not extend across a leader (a branch could enter mid-unit).
func blockLeaders(prog *Program) []bool {
	leaders := make([]bool, len(prog.Instrs)+1)
	if len(leaders) > 0 {
		leaders[0] = true
	}
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		switch in.Op {
		case OpJmp, OpJz:
			if in.Off >= 0 && in.Off < len(leaders) {
				leaders[in.Off] = true
			}
			leaders[i+1] = true
		case OpRet:
			leaders[i+1] = true
		}
	}
	return leaders
}

// straightRuns enumerates the maximal fuseable straight-line runs of
// prog: half-open ranges of fuseable instructions that contain no block
// leader after their first pc. Single-instruction runs are kept: the
// miner can extend a run with its block's terminating branch, so even
// a lone compare before a jz fuses into a two-member unit.
func straightRuns(prog *Program) []SeqRange {
	leaders := blockLeaders(prog)
	var runs []SeqRange
	start := -1
	flush := func(end int) {
		if start >= 0 && end > start {
			runs = append(runs, SeqRange{Start: start, End: end})
		}
		start = -1
	}
	for pc := range prog.Instrs {
		if !fuseableInstr(&prog.Instrs[pc]) {
			flush(pc)
			continue
		}
		if start < 0 {
			start = pc
		} else if leaders[pc] {
			flush(pc)
			start = pc
		}
	}
	flush(len(prog.Instrs))
	return runs
}

// minedSeq is a candidate with its merit, kept for ranking.
type minedSeq struct {
	r      SeqRange
	weight int64
}

// MineSuperinsts mines hot straight-line sequences from per-PC dynamic
// execution counts (Machine.PCCounts from a profiled run). Maximal
// fuseable runs are chunked greedily to o.MaxLen; each chunk is
// weighted by minCount × (len−1) — the dynamic dispatches fusing it
// saves — and chunks below o.MinCount executions are dropped. A nil
// counts slice mines statically (every run counts once). The result is
// deterministic for identical inputs.
func MineSuperinsts(prog *Program, counts []int64, o SuperOpts) *SuperSet {
	o = o.withDefaults()
	countAt := func(pc int) int64 {
		if counts == nil {
			return 1
		}
		if pc < len(counts) {
			return counts[pc]
		}
		return 0
	}

	var cands []minedSeq
	for _, run := range straightRuns(prog) {
		// When the run is cut short by the block's own terminating
		// branch, the final chunk may absorb it (ext = one past the
		// branch): the whole loop body then dispatches once per
		// iteration. The branch executes exactly as often as the rest
		// of its block, so the weight math is unchanged.
		ext := run.End
		if ext < len(prog.Instrs) && branchTail(prog.Instrs[ext].Op) {
			ext++
		}
		for start := run.Start; ext-start >= o.MinLen; {
			end := start + o.MaxLen
			if end > ext {
				end = ext
			}
			minCnt := countAt(start)
			for pc := start + 1; pc < end; pc++ {
				if c := countAt(pc); c < minCnt {
					minCnt = c
				}
			}
			if minCnt >= o.MinCount {
				cands = append(cands, minedSeq{
					r:      SeqRange{Start: start, End: end},
					weight: minCnt * int64(end-start-1),
				})
			}
			start = end
		}
	}

	if o.MaxSeqs > 0 && len(cands) > o.MaxSeqs {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].weight != cands[j].weight {
				return cands[i].weight > cands[j].weight
			}
			return cands[i].r.Start < cands[j].r.Start
		})
		cands = cands[:o.MaxSeqs]
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].r.Start < cands[j].r.Start })

	set := &SuperSet{Ranges: make([]SeqRange, len(cands))}
	for i, c := range cands {
		set.Ranges[i] = c.r
	}
	return set
}

// StaticSuperinsts is the cold-program fallback heuristic: it fuses
// unconditionally-sequential op pairs (adjacent fuseable instructions
// within one basic block, paired left to right). This is what
// PreparedFor applies process-wide when superinstructions are enabled;
// profile-guided preparation (PrepareWithProfile) supersedes it with
// longer, hotness-ranked sequences.
func StaticSuperinsts(prog *Program) *SuperSet {
	set := &SuperSet{}
	for _, run := range straightRuns(prog) {
		for pc := run.Start; pc+MinSuperLen <= run.End; pc += MinSuperLen {
			set.Ranges = append(set.Ranges, SeqRange{Start: pc, End: pc + MinSuperLen})
		}
	}
	return set
}

// PrepareWithProfile mines superinstructions from a profiled run's
// per-PC counts and returns the prepared form of prog with the mined
// set fused, consulting the prepared-program cache. Typical use:
//
//	m.Profile = true
//	m.Run(prog, args...)            // profiling run (either engine)
//	pp := vm.PrepareWithProfile(prog, proc, m.PCCounts, vm.SuperOpts{})
//
// or equivalently set Machine.SuperSet to the mined set and keep using
// Machine.Run.
func PrepareWithProfile(prog *Program, proc *pdesc.Processor, pcCounts []int64, o SuperOpts) *PreparedProgram {
	return PreparedForSet(prog, proc, MineSuperinsts(prog, pcCounts, o))
}

// zeroVmval backs the absent third operand of two-argument intrinsics
// in runSuper's in-place operand reads. Never written.
var zeroVmval vmval

// laneOf is vmval.lane without copying the vmval (scalars broadcast).
func laneOf(v *vmval, j int) complex128 {
	if v.lanes == nil {
		return v.c
	}
	return v.lanes[j]
}

// isZeroP is isZero without copying the vmval.
func isZeroP(v *vmval) bool {
	if v.lanes != nil {
		return v.lanes[0] == 0
	}
	return v.i == 0 && v.f == 0 && v.c == 0
}

// setInt / setFloat / setComplex store a scalar result in place with
// the write-through conventions of fromInt / fromFloat / fromComplex.
// Building a vmval literal and assigning it moves 40 bytes through the
// stack per member; these compile to four direct stores.
func setInt(d *vmval, v int64) {
	d.i, d.f, d.c, d.lanes = v, float64(v), complex(float64(v), 0), nil
}

func setFloat(d *vmval, v float64) {
	d.i, d.f, d.c, d.lanes = int64(v), v, complex(v, 0), nil
}

func setComplex(d *vmval, v complex128) {
	d.i, d.f, d.c, d.lanes = int64(real(v)), real(v), v, nil
}

// setMaterialize is materialize without the intermediate vmval.
func setMaterialize(d *vmval, v complex128, base ir.BaseKind) {
	switch base {
	case ir.Int:
		setInt(d, int64(real(v)))
	case ir.Float:
		setFloat(d, real(v))
	default:
		setComplex(d, v)
	}
}

// binScalarInto is binScalarVal with pointer operands and an in-place
// result store. Every operand field is read before d is written, so
// d aliasing a or b computes exactly what the copying form computes.
func binScalarInto(d *vmval, op ir.Op, opBase, kBase ir.BaseKind, a, b *vmval) error {
	switch opBase {
	case ir.Int:
		r, err := binInt(op, a.i, b.i)
		if err != nil {
			return err
		}
		setInt(d, r)
	case ir.Float:
		r := binFloat(op, a.f, b.f)
		if kBase == ir.Int {
			setInt(d, int64(r))
		} else {
			setFloat(d, r)
		}
	default:
		r, err := binComplex(op, a.c, b.c)
		if err != nil {
			return err
		}
		if kBase == ir.Int {
			setInt(d, int64(real(r)))
		} else {
			setComplex(d, r)
		}
	}
	return nil
}

// classCharge is one aggregated accounting line of a fused unit:
// counts[class] += n when the unit completes.
type classCharge struct {
	class int32
	n     int64
}

// chargeFirstOp reports whether an opcode's cycle charge lands before
// its fault checks in the reference engine. Memory and reduce ops
// validate first and charge after; arithmetic charges before it can
// fault. This placement is replayed exactly when a fused unit faults
// mid-sequence.
func chargeFirstOp(op Opc) bool {
	switch op {
	case OpLoad, OpVLoad, OpStore, OpDim, OpReduce:
		return false
	}
	return true
}

// fuseablePInstr re-checks fuseability against the prepared decode:
// intrinsics that fault on this processor (pre or post charge) must
// keep their own dispatch slot so fault ordering is preserved.
func fuseablePInstr(p *pInstr) bool {
	if p.op >= xIAdd && p.op <= xIntrS {
		return true
	}
	switch p.op {
	case OpIntr:
		return p.intrFaultPre == "" && p.intrFaultPost == ""
	case OpNop, OpConst, OpMov, OpConv, OpBin, OpUn, OpLoad,
		OpVLoad, OpStore, OpDim, OpSel, OpSplat, OpRamp, OpReduce:
		return true
	}
	return false
}

// fuseSuperinsts rewrites code in place, replacing the first slot of
// each valid range with an xSuper unit holding copies of the member
// pInstrs, their summed cycle cost, and the aggregated class charges.
// A range may end with the block's own OpJmp/OpJz terminator; the unit
// then resolves the successor pc itself. Interior slots keep their
// normal decode (no branch targets them, except possibly a trailing
// branch member, and entering there simply executes it unfused), which
// keeps the pc ↔ code mapping 1:1 for profiling. Invalid ranges — out
// of bounds, wrong length, overlapping an earlier range, crossing a
// block leader, or containing an unfuseable member on this processor —
// are dropped silently (counted in SuperinstStats).
func fuseSuperinsts(prog *Program, code []pInstr, set *SuperSet) (seqs, ops int) {
	if set == nil || len(set.Ranges) == 0 {
		return 0, 0
	}
	leaders := blockLeaders(prog)
	used := make([]bool, len(code))
	var skipped uint64
	for _, r := range set.Ranges {
		n := r.End - r.Start
		if r.Start < 0 || r.End > len(code) || n < MinSuperLen || n > MaxSuperLen {
			skipped++
			continue
		}
		ok := true
		for pc := r.Start; pc < r.End; pc++ {
			if used[pc] {
				ok = false
				break
			}
			if pc == r.End-1 && branchTail(code[pc].op) {
				// The block's own terminator may close the unit. Its pc
				// being a leader is fine: interior slots keep their
				// normal decode, so a jump straight to the branch still
				// executes it unfused.
				continue
			}
			if !fuseablePInstr(&code[pc]) || (pc > r.Start && leaders[pc]) {
				ok = false
				break
			}
		}
		if !ok {
			skipped++
			continue
		}

		sub := make([]pInstr, n)
		copy(sub, code[r.Start:r.End])
		var cost int64
		agg := make(map[int32]int64, n)
		for k := range sub {
			cost += sub[k].cost
			if sub[k].class >= 0 && sub[k].countN != 0 {
				agg[sub[k].class] += sub[k].countN
			}
		}
		charges := make([]classCharge, 0, len(agg))
		for class, cnt := range agg {
			charges = append(charges, classCharge{class: class, n: cnt})
		}
		sort.Slice(charges, func(i, j int) bool { return charges[i].class < charges[j].class })

		for pc := r.Start; pc < r.End; pc++ {
			used[pc] = true
		}
		code[r.Start] = pInstr{
			op:      xSuper,
			off:     r.End,
			cost:    cost,
			class:   -1,
			sub:     sub,
			charges: charges,
		}
		seqs++
		ops += n
	}
	if skipped > 0 {
		superStats.skipped.Add(skipped)
	}
	return seqs, ops
}

// runSuper executes fused-unit members semantics-only: no cycle or
// class accounting, no per-member poll or limit checks (the caller owns
// those, batched). It returns the number of members completed and, when
// < len(sub), the member's fault (message identical to the unfused
// engine's). Each case must compute exactly what its exec counterpart
// computes.
func (pp *PreparedProgram) runSuper(sub []pInstr, s *scratch) (int, error) {
	regs := s.regs
	arrays := s.arrays
	for k := range sub {
		in := &sub[k]
		switch in.op {
		case OpNop:

		case OpConst:
			v := &in.val
			d := &regs[in.dst]
			d.i, d.f, d.c, d.lanes = v.i, v.f, v.c, v.lanes

		case OpMov:
			src := &regs[in.a]
			lanes := src.lanes
			if lanes != nil {
				dst := s.seg(in.dst, len(lanes))
				copy(dst, lanes)
				lanes = dst
			}
			d := &regs[in.dst]
			d.i, d.f, d.c, d.lanes = src.i, src.f, src.c, lanes

		case OpConv:
			if in.lanes > 1 {
				dst := s.seg(in.dst, in.lanes)
				convInto(dst, regs[in.a], in.kBase)
				regs[in.dst] = vmval{lanes: dst}
			} else {
				src := &regs[in.a]
				d := &regs[in.dst]
				switch in.kBase {
				case ir.Int:
					setInt(d, src.i)
				case ir.Float:
					setFloat(d, src.f)
				default:
					setComplex(d, src.c)
				}
			}

		case OpBin:
			a, b := &regs[in.a], &regs[in.b]
			if in.lanes <= 1 {
				if err := binScalarInto(&regs[in.dst], in.bop, in.opBase, in.kBase, a, b); err != nil {
					return k, err
				}
				break
			}
			dst := s.seg(in.dst, in.lanes)
			for j := 0; j < in.lanes; j++ {
				r, err := binLane(in.bop, in.opBase, in.kBase, laneOf(a, j), laneOf(b, j))
				if err != nil {
					return k, err
				}
				dst[j] = r
			}
			regs[in.dst] = vmval{lanes: dst}

		case xIAdd:
			setInt(&regs[in.dst], regs[in.a].i+regs[in.b].i)

		case xISub:
			setInt(&regs[in.dst], regs[in.a].i-regs[in.b].i)

		case xIMul:
			setInt(&regs[in.dst], regs[in.a].i*regs[in.b].i)

		case xILt, xILe, xIGt, xIGe, xIEq, xINe, xIAnd, xIOr:
			x, y := regs[in.a].i, regs[in.b].i
			var cond bool
			switch in.op {
			case xILt:
				cond = x < y
			case xILe:
				cond = x <= y
			case xIGt:
				cond = x > y
			case xIGe:
				cond = x >= y
			case xIEq:
				cond = x == y
			case xINe:
				cond = x != y
			case xIAnd:
				cond = x != 0 && y != 0
			default:
				cond = x != 0 || y != 0
			}
			setInt(&regs[in.dst], b2i(cond))

		case xFAdd:
			setFloat(&regs[in.dst], regs[in.a].f+regs[in.b].f)

		case xFSub:
			setFloat(&regs[in.dst], regs[in.a].f-regs[in.b].f)

		case xFMul:
			setFloat(&regs[in.dst], regs[in.a].f*regs[in.b].f)

		case xFDiv:
			setFloat(&regs[in.dst], regs[in.a].f/regs[in.b].f)

		case xFLt, xFLe, xFGt, xFGe, xFEq, xFNe,
			xFLtI, xFLeI, xFGtI, xFGeI, xFEqI, xFNeI:
			x, y := regs[in.a].f, regs[in.b].f
			var cond bool
			switch in.op {
			case xFLt, xFLtI:
				cond = x < y
			case xFLe, xFLeI:
				cond = x <= y
			case xFGt, xFGtI:
				cond = x > y
			case xFGe, xFGeI:
				cond = x >= y
			case xFEq, xFEqI:
				cond = x == y
			default:
				cond = x != y
			}
			setInt(&regs[in.dst], b2i(cond))

		case xCAdd:
			setComplex(&regs[in.dst], regs[in.a].c+regs[in.b].c)

		case xCSub:
			setComplex(&regs[in.dst], regs[in.a].c-regs[in.b].c)

		case xCMul:
			setComplex(&regs[in.dst], regs[in.a].c*regs[in.b].c)

		case xIntrS:
			a0 := lane0(regs, in.args[0])
			a1 := lane0(regs, in.args[1])
			var a2 complex128
			if len(in.args) > 2 {
				a2 = lane0(regs, in.args[2])
			}
			setMaterialize(&regs[in.dst], intrLane(in.intr, a0, a1, a2), in.kBase)

		case OpUn:
			a := &regs[in.a]
			if in.lanes <= 1 {
				v, err := unScalar(in.bop, in.opBase, in.kBase, *a)
				if err != nil {
					return k, err
				}
				regs[in.dst] = v
				break
			}
			dst := s.seg(in.dst, in.lanes)
			for j := 0; j < in.lanes; j++ {
				v, err := unLane(in.bop, in.opBase, in.kBase, laneOf(a, j))
				if err != nil {
					return k, err
				}
				dst[j] = v
			}
			regs[in.dst] = vmval{lanes: dst}

		case OpIntr:
			// Only fault-free intrinsics are fuseable, so no pre/post
			// fault checks here.
			if in.pat != nil {
				dst := s.seg(in.dst, in.lanes)
				var argbuf [ir.MaxPatternArity]complex128
				pargs := argbuf[:len(in.args)]
				for j := 0; j < in.lanes; j++ {
					for ai, r := range in.args {
						pargs[ai] = laneOf(&regs[r], j)
					}
					dst[j] = in.pat.EvalLane(pargs)
				}
				if in.lanes <= 1 {
					setMaterialize(&regs[in.dst], dst[0], in.kBase)
				} else {
					regs[in.dst] = vmval{lanes: dst}
				}
				break
			}
			// Like exec's intrFill call, but reading the operand
			// registers in place: copying three 40-byte vmvals through
			// the stack per fused member measurably stalls the loop.
			a0, a1 := &regs[in.args[0]], &regs[in.args[1]]
			a2 := &zeroVmval
			if len(in.args) > 2 {
				a2 = &regs[in.args[2]]
			}
			lanes := s.seg(in.dst, in.lanes)
			for j := 0; j < in.lanes; j++ {
				lanes[j] = intrLane(in.intr, laneOf(a0, j), laneOf(a1, j), laneOf(a2, j))
			}
			if in.lanes <= 1 {
				setMaterialize(&regs[in.dst], lanes[0], in.kBase)
			} else {
				regs[in.dst] = vmval{lanes: lanes}
			}

		case OpLoad:
			arr := arrays[in.arr]
			if arr == nil {
				return k, fmt.Errorf("load from unallocated array %s", in.arrName)
			}
			idx := int(regs[in.a].i)
			if idx < 0 || idx >= arr.Len() {
				return k, fmt.Errorf("load %s[%d] out of bounds (len %d)", in.arrName, idx, arr.Len())
			}
			if in.elem == ir.Complex {
				setComplex(&regs[in.dst], arr.C[idx])
			} else {
				setFloat(&regs[in.dst], arr.F[idx])
			}

		case OpVLoad:
			arr := arrays[in.arr]
			if arr == nil {
				return k, fmt.Errorf("vload from unallocated array %s", in.arrName)
			}
			base := int(regs[in.a].i)
			lo, hi := base+in.loOff, base+in.hiOff
			if lo < 0 || hi >= arr.Len() {
				return k, fmt.Errorf("vload %s[%d..%d] out of bounds (len %d)", in.arrName, lo, hi, arr.Len())
			}
			dst := s.seg(in.dst, in.lanes)
			if in.elem == ir.Complex && in.stride == 1 {
				copy(dst, arr.C[base:base+in.lanes])
			} else {
				for j := 0; j < in.lanes; j++ {
					dst[j] = arr.At(base + j*in.stride)
				}
			}
			regs[in.dst] = vmval{lanes: dst}

		case OpStore:
			arr := arrays[in.arr]
			if arr == nil {
				return k, fmt.Errorf("store to unallocated array %s", in.arrName)
			}
			base := int(regs[in.a].i)
			val := &regs[in.b]
			if base < 0 || base+in.lanes > arr.Len() {
				return k, fmt.Errorf("store %s[%d..%d] out of bounds (len %d)", in.arrName, base, base+in.lanes-1, arr.Len())
			}
			if in.lanes > 1 {
				for j := 0; j < in.lanes; j++ {
					storeElem(arr, base+j, laneOf(val, j))
				}
			} else {
				storeElem(arr, base, val.c)
			}

		case OpDim:
			arr := arrays[in.arr]
			if arr == nil {
				return k, fmt.Errorf("dim of unallocated array %s", in.arrName)
			}
			switch in.immI {
			case int64(ir.DimRows):
				setInt(&regs[in.dst], int64(arr.Rows))
			case int64(ir.DimCols):
				setInt(&regs[in.dst], int64(arr.Cols))
			default:
				setInt(&regs[in.dst], int64(arr.Len()))
			}

		case OpSel:
			cond, th, el := &regs[in.args[0]], &regs[in.args[1]], &regs[in.args[2]]
			if in.lanes <= 1 {
				src := el
				if !isZeroP(cond) {
					src = th
				}
				d := &regs[in.dst]
				switch in.kBase {
				case ir.Int:
					setInt(d, src.i)
				case ir.Float:
					setFloat(d, src.f)
				default:
					setComplex(d, src.c)
				}
				break
			}
			dst := s.seg(in.dst, in.lanes)
			for j := 0; j < in.lanes; j++ {
				var v complex128
				if laneOf(cond, j) != 0 {
					v = laneOf(th, j)
				} else {
					v = laneOf(el, j)
				}
				if in.kBase != ir.Complex {
					v = complex(real(v), 0)
				}
				dst[j] = v
			}
			regs[in.dst] = vmval{lanes: dst}

		case OpSplat:
			dst := s.seg(in.dst, in.lanes)
			v := regs[in.a].c
			for j := range dst {
				dst[j] = v
			}
			regs[in.dst] = vmval{lanes: dst}

		case OpRamp:
			dst := s.seg(in.dst, in.lanes)
			base := regs[in.a].i
			for j := range dst {
				dst[j] = complex(float64(base+int64(j)*in.immI), 0)
			}
			regs[in.dst] = vmval{lanes: dst}

		case OpReduce:
			lanes := regs[in.a].lanes
			if lanes == nil {
				return k, fmt.Errorf("reduce of scalar register")
			}
			acc := lanes[0]
			for j := 1; j < len(lanes); j++ {
				var err error
				acc, err = scalarBin(in.bop, in.opBase, acc, lanes[j])
				if err != nil {
					return k, err
				}
			}
			setMaterialize(&regs[in.dst], acc, in.kBase)

		default:
			// Unreachable: fuseablePInstr rejects everything else.
			return k, fmt.Errorf("bad opcode %s", in.op)
		}
	}
	return len(sub), nil
}

// superStats are process-wide superinstruction counters, exported for
// /metrics. Static counts accrue per preparation; DispatchesSaved
// accrues per run (flushed once at run end, so the hot loop stays free
// of atomics).
var superStats struct {
	prepares atomic.Uint64
	seqs     atomic.Uint64
	ops      atomic.Uint64
	skipped  atomic.Uint64
	saved    atomic.Uint64
}

// SuperinstInfo is a point-in-time snapshot of the superinstruction
// tier, exported for service metrics and tooling.
type SuperinstInfo struct {
	// Enabled is the process-default policy (SetSuperinstEnabled /
	// $MAT2C_VM_SUPERINST).
	Enabled bool `json:"enabled"`
	// Preparations counts preparations that fused at least one unit.
	Preparations uint64 `json:"preparations"`
	// SequencesFused / OpsFused count fused units and their member
	// instructions across all preparations.
	SequencesFused uint64 `json:"sequences_fused"`
	OpsFused       uint64 `json:"ops_fused"`
	// RangesSkipped counts requested ranges dropped at fuse time
	// (overlap, control flow, unfuseable member on the processor).
	RangesSkipped uint64 `json:"ranges_skipped"`
	// DispatchesSaved counts dynamic dispatch slots eliminated by fused
	// execution: Σ (members−1) over every executed unit.
	DispatchesSaved uint64 `json:"dispatches_saved"`
}

// SuperinstStats reports the process-wide superinstruction counters.
func SuperinstStats() SuperinstInfo {
	return SuperinstInfo{
		Enabled:         SuperinstEnabled(),
		Preparations:    superStats.prepares.Load(),
		SequencesFused:  superStats.seqs.Load(),
		OpsFused:        superStats.ops.Load(),
		RangesSkipped:   superStats.skipped.Load(),
		DispatchesSaved: superStats.saved.Load(),
	}
}

// ResetSuperinstStats zeroes the superinstruction counters (tests).
func ResetSuperinstStats() {
	superStats.prepares.Store(0)
	superStats.seqs.Store(0)
	superStats.ops.Store(0)
	superStats.skipped.Store(0)
	superStats.saved.Store(0)
}
