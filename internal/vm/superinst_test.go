package vm

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
)

// scalarProg hand-builds a straight-line program over float scalars:
// n chained adds feeding a result register, then ret.
func scalarProg(n int) *Program {
	prog := &Program{Name: "t", NumRegs: 3}
	prog.Params = []Param{{Name: "a", Elem: ir.Float, Reg: 0}}
	prog.Results = []Param{{Name: "y", Elem: ir.Float, Reg: 1}}
	fk := ir.Kind{Base: ir.Float, Lanes: 1}
	for i := 0; i < n; i++ {
		prog.Instrs = append(prog.Instrs, Instr{
			Op: OpBin, K: fk, OpBase: ir.Float, BOp: ir.OpAdd, Dst: 1, A: 0, B: 1,
		})
	}
	prog.Instrs = append(prog.Instrs, Instr{Op: OpRet})
	return prog
}

func TestMineSuperinstsChunking(t *testing.T) {
	prog := scalarProg(20)
	set := MineSuperinsts(prog, nil, SuperOpts{})
	want := []SeqRange{{Start: 0, End: 8}, {Start: 8, End: 16}, {Start: 16, End: 20}}
	if !reflect.DeepEqual(set.Ranges, want) {
		t.Errorf("ranges = %v, want %v", set.Ranges, want)
	}
	// Determinism: identical inputs, identical output.
	if again := MineSuperinsts(prog, nil, SuperOpts{}); !reflect.DeepEqual(again, set) {
		t.Errorf("miner is not deterministic: %v vs %v", again, set)
	}
	// MaxLen below default.
	set = MineSuperinsts(prog, nil, SuperOpts{MaxLen: 4})
	if len(set.Ranges) != 5 || set.Ranges[0].End != 4 {
		t.Errorf("MaxLen=4 ranges = %v", set.Ranges)
	}
}

func TestMineSuperinstsMinCountAndMaxSeqs(t *testing.T) {
	prog := scalarProg(20)
	counts := make([]int64, len(prog.Instrs))
	for i := range counts {
		counts[i] = 1
	}
	for i := 8; i < 16; i++ {
		counts[i] = 1000 // one hot chunk
	}
	set := MineSuperinsts(prog, counts, SuperOpts{MinCount: 10})
	if len(set.Ranges) != 1 || set.Ranges[0] != (SeqRange{Start: 8, End: 16}) {
		t.Errorf("MinCount=10 ranges = %v, want just [8,16)", set.Ranges)
	}
	set = MineSuperinsts(prog, counts, SuperOpts{MaxSeqs: 1})
	if len(set.Ranges) != 1 || set.Ranges[0] != (SeqRange{Start: 8, End: 16}) {
		t.Errorf("MaxSeqs=1 ranges = %v, want the hottest chunk [8,16)", set.Ranges)
	}
}

// TestMineSuperinstsBranchTail: a basic block's own terminating branch
// may close a unit, including the compare-and-branch pair of a loop
// condition block (a one-instruction run before its jz).
func TestMineSuperinstsBranchTail(t *testing.T) {
	fk := ir.Kind{Base: ir.Float, Lanes: 1}
	prog := &Program{Name: "t", NumRegs: 3}
	prog.Params = []Param{{Name: "a", Elem: ir.Float, Reg: 0}}
	prog.Results = []Param{{Name: "y", Elem: ir.Float, Reg: 1}}
	prog.Instrs = []Instr{
		{Op: OpBin, K: fk, OpBase: ir.Float, BOp: ir.OpAdd, Dst: 1, A: 0, B: 1}, // 0
		{Op: OpBin, K: fk, OpBase: ir.Float, BOp: ir.OpAdd, Dst: 1, A: 0, B: 1}, // 1
		{Op: OpJz, A: 1, Off: 5},                                                // 2: block terminator
		{Op: OpBin, K: fk, OpBase: ir.Float, BOp: ir.OpAdd, Dst: 1, A: 0, B: 1}, // 3: lone op...
		{Op: OpJmp, Off: 5},                                                     // 4: ...before its jmp
		{Op: OpRet}, // 5
	}
	set := MineSuperinsts(prog, nil, SuperOpts{})
	want := []SeqRange{{Start: 0, End: 3}, {Start: 3, End: 5}}
	if !reflect.DeepEqual(set.Ranges, want) {
		t.Errorf("ranges = %v, want %v", set.Ranges, want)
	}
	assertEnginesAgree(t, prog, pdesc.Builtin("scalar"), 0, []interface{}{1.5})
}

func TestStaticSuperinstsPairs(t *testing.T) {
	prog := scalarProg(5) // odd-length run: last op stays unpaired
	set := StaticSuperinsts(prog)
	want := []SeqRange{{Start: 0, End: 2}, {Start: 2, End: 4}}
	if !reflect.DeepEqual(set.Ranges, want) {
		t.Errorf("ranges = %v, want %v", set.Ranges, want)
	}
}

// TestSuperSetCacheKeying: the prepared-program cache must keep the
// policy-default, fusion-off, and each mined preparation apart.
func TestSuperSetCacheKeying(t *testing.T) {
	defer ResetPreparedCache()
	ResetPreparedCache()
	prog := scalarProg(20)
	proc := pdesc.Builtin("scalar")

	ppDefault := PreparedFor(prog, proc) // policy default (static pairs)
	if again := PreparedFor(prog, proc); again != ppDefault {
		t.Error("PreparedFor twice returned distinct preparations")
	}
	ppOff := PreparedForSet(prog, proc, nil) // fusion off
	if ppOff == ppDefault {
		t.Error("fusion-off preparation aliased the policy default")
	}
	mined := MineSuperinsts(prog, nil, SuperOpts{MaxLen: 4})
	ppMined := PreparedForSet(prog, proc, mined)
	if ppMined == ppOff || ppMined == ppDefault {
		t.Error("mined preparation aliased another set's entry")
	}
	// An equal set mined separately must hit the same entry.
	if again := PreparedForSet(prog, proc, MineSuperinsts(prog, nil, SuperOpts{MaxLen: 4})); again != ppMined {
		t.Error("equal mined sets missed the cache")
	}
	st := PreparedCacheStats()
	if st.Entries != 3 || st.Misses != 3 {
		t.Errorf("cache entries/misses = %d/%d, want 3/3 (default, off, mined)", st.Entries, st.Misses)
	}

	// Disabling the process policy must route PreparedFor to the
	// fusion-off entry, not the static one.
	SetSuperinstEnabled(false)
	defer SetSuperinstEnabled(true)
	if pp := PreparedFor(prog, proc); pp != ppOff {
		t.Error("with superinsts disabled, PreparedFor did not share the fusion-off preparation")
	}
}

// assertMinedAgree runs prog under the reference engine and under the
// prepared engine with a profile-mined superinstruction set, requiring
// bit-identical observables (the three-way static/mined/reference
// differential for full kernels lives in internal/bench).
func assertMinedAgree(t *testing.T, prog *Program, p *pdesc.Processor, maxCycles int64, args []interface{}) {
	t.Helper()
	mr, outR, errR := runEngine(prog, p, EngineReference, maxCycles, args)

	mp := NewMachine(p)
	mp.Engine = EnginePrepared
	mp.MaxCycles = maxCycles
	mp.SuperSet = &SuperSet{}
	mp.Profile = true
	mp.Run(prog, cloneArgs(args)...) // profiling run; faults still profile
	set := MineSuperinsts(prog, mp.PCCounts, SuperOpts{})
	mp.Profile = false
	mp.SuperSet = set
	outP, errP := mp.Run(prog, cloneArgs(args)...)

	if (errR == nil) != (errP == nil) {
		t.Fatalf("error mismatch: reference %v, mined %v", errR, errP)
	}
	if errR != nil && errR.Error() != errP.Error() {
		t.Fatalf("error text mismatch:\n  reference: %v\n  mined:     %v", errR, errP)
	}
	if mr.Cycles != mp.Cycles || mr.Executed != mp.Executed {
		t.Errorf("cycles %d vs %d, executed %d vs %d", mr.Cycles, mp.Cycles, mr.Executed, mp.Executed)
	}
	if !reflect.DeepEqual(mr.ClassCounts, mp.ClassCounts) {
		t.Errorf("ClassCounts:\n  reference %v\n  mined     %v", mr.ClassCounts, mp.ClassCounts)
	}
	if errR == nil {
		bitsEqResults(t, outR, outP)
	}
}

// TestMinedEquivalence: trace-mined fusion is cycle-exact on compiled
// kernels across targets, including faulting runs (cycle limit).
func TestMinedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, proc := range []string{"scalar", "dspasip", "wide8"} {
		f, p := buildIR(t, firSrc, proc, true, dynVec(), dynVec())
		prog, err := Lower(f)
		if err != nil {
			t.Fatal(err)
		}
		args := []interface{}{randArr(256, r), randArr(16, r)}
		assertMinedAgree(t, prog, p, 0, args)
		// Cycle limit lands mid-run, exercising the fused slow path.
		assertMinedAgree(t, prog, p, 999, args)
		assertMinedAgree(t, prog, p, 12345, args)
	}

	f, p := buildIR(t, cfirSrc, "dspasip", true, dynCVec(), dynCVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	assertMinedAgree(t, prog, p, 0, []interface{}{randCArr(256, r), randCArr(16, r)})
}

// TestProfileParity: Machine.Profile must work on the prepared engine
// (with and without fusion) and agree with the reference engine on
// every per-PC count — fused units map counts back to member pcs.
func TestProfileParity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f, p := buildIR(t, firSrc, "dspasip", true, dynVec(), dynVec())
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	args := []interface{}{randArr(256, r), randArr(16, r)}

	profile := func(configure func(*Machine)) []int64 {
		m := NewMachine(p)
		m.Profile = true
		configure(m)
		if _, err := m.Run(prog, cloneArgs(args)...); err != nil {
			t.Fatal(err)
		}
		return m.PCCounts
	}

	ref := profile(func(m *Machine) { m.Engine = EngineReference })
	prep := profile(func(m *Machine) { m.Engine = EnginePrepared; m.SuperSet = &SuperSet{} })
	static := profile(func(m *Machine) { m.Engine = EnginePrepared })
	var mined []int64
	{
		m := NewMachine(p)
		m.Engine = EnginePrepared
		m.Profile = true
		if _, err := m.Run(prog, cloneArgs(args)...); err != nil {
			t.Fatal(err)
		}
		m.SuperSet = MineSuperinsts(prog, m.PCCounts, SuperOpts{})
		mined = profile(func(m2 *Machine) { m2.Engine = EnginePrepared; m2.SuperSet = m.SuperSet })
	}

	for name, got := range map[string][]int64{"prepared": prep, "static": static, "mined": mined} {
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("%s engine per-PC profile differs from reference", name)
		}
	}
}

// TestSuperinstCancellationStride: CancelCheckStride still bounds
// cancellation latency when hot loops run as fused units.
func TestSuperinstCancellationStride(t *testing.T) {
	f, p := buildIR(t, spinSrc, "dspasip", true, sema.ScalarType(sema.Real))
	prog, err := Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	m.Engine = EnginePrepared
	m.Profile = true
	if _, err := m.Run(prog, 20000.0); err != nil {
		t.Fatal(err)
	}
	set := MineSuperinsts(prog, m.PCCounts, SuperOpts{})
	if len(set.Ranges) == 0 {
		t.Fatal("miner found nothing to fuse in the spin loop")
	}
	m.Profile = false
	m.SuperSet = set

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.RunContext(ctx, prog, 1e9)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelledError", err)
	}
	if ce.Executed > CancelCheckStride || m.Executed > CancelCheckStride {
		t.Errorf("executed %d (machine %d) fused instructions before observing cancellation, want <= %d",
			ce.Executed, m.Executed, CancelCheckStride)
	}
}

func TestSuperinstStatsAccrue(t *testing.T) {
	ResetSuperinstStats()
	ResetPreparedCache()
	defer ResetPreparedCache()
	prog := scalarProg(20)
	proc := pdesc.Builtin("scalar")
	m := NewMachine(proc)
	m.Engine = EnginePrepared
	m.SuperSet = MineSuperinsts(prog, nil, SuperOpts{})
	if _, err := m.Run(prog, 1.0); err != nil {
		t.Fatal(err)
	}
	st := SuperinstStats()
	if st.Preparations != 1 || st.SequencesFused != 3 || st.OpsFused != 20 {
		t.Errorf("stats = %+v, want 1 preparation, 3 sequences, 20 ops", st)
	}
	// 20 members in 3 dispatches: 17 dispatch slots saved.
	if st.DispatchesSaved != 17 {
		t.Errorf("DispatchesSaved = %d, want 17", st.DispatchesSaved)
	}
}

// fuzzProg decodes a byte string into a small program over six scalar
// registers: consts, float/int arithmetic (including div, a fault
// source), moves, and short branches (including backward, a loop
// source — bounded by MaxCycles in the harness).
func fuzzProg(data []byte) *Program {
	prog := &Program{Name: "fz", NumRegs: 6}
	prog.Params = []Param{
		{Name: "a", Elem: ir.Float, Reg: 0},
		{Name: "b", Elem: ir.Float, Reg: 1},
		{Name: "c", Elem: ir.Int, Reg: 2},
	}
	prog.Results = []Param{{Name: "y", Elem: ir.Float, Reg: 3}}
	fk := ir.Kind{Base: ir.Float, Lanes: 1}
	ik := ir.Kind{Base: ir.Int, Lanes: 1}
	n := len(data) / 2
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		o, q := data[2*i], data[2*i+1]
		dst := int(o>>3)%4 + 2
		a, b := int(q)%6, int(q/6)%6
		switch o % 8 {
		case 0:
			prog.Instrs = append(prog.Instrs, Instr{Op: OpConst, K: ik, Dst: dst, ImmI: int64(q) - 128})
		case 1:
			prog.Instrs = append(prog.Instrs, Instr{Op: OpConst, K: fk, Dst: dst, ImmF: float64(q)/16 - 8})
		case 2:
			prog.Instrs = append(prog.Instrs, Instr{Op: OpBin, K: fk, OpBase: ir.Float, BOp: ir.OpAdd, Dst: dst, A: a, B: b})
		case 3:
			prog.Instrs = append(prog.Instrs, Instr{Op: OpBin, K: fk, OpBase: ir.Float, BOp: ir.OpMul, Dst: dst, A: a, B: b})
		case 4:
			prog.Instrs = append(prog.Instrs, Instr{Op: OpBin, K: ik, OpBase: ir.Int, BOp: ir.OpAdd, Dst: dst, A: a, B: b})
		case 5:
			prog.Instrs = append(prog.Instrs, Instr{Op: OpBin, K: ik, OpBase: ir.Int, BOp: ir.OpDiv, Dst: dst, A: a, B: b})
		case 6:
			prog.Instrs = append(prog.Instrs, Instr{Op: OpMov, K: fk, Dst: dst, A: a})
		case 7:
			// Branch: offset decoded after the loop once length is known.
			prog.Instrs = append(prog.Instrs, Instr{Op: OpJz, A: a, Off: int(q)})
		}
	}
	prog.Instrs = append(prog.Instrs, Instr{Op: OpRet})
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == OpJz {
			prog.Instrs[i].Off %= len(prog.Instrs)
		}
	}
	return prog
}

// FuzzSuperinstMiner feeds random straight-line-with-branches programs
// through the reference engine, the prepared engine with a set mined
// from random counts, and the prepared engine with an adversarial
// explicit range list (invalid ranges must be skipped, never crash),
// requiring bit-identical observables throughout.
func FuzzSuperinstMiner(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 7, 3, 11, 4, 200, 5, 1, 7, 0})
	f.Add([]byte{0, 0, 1, 255, 2, 9, 6, 13, 7, 250, 4, 31, 5, 0})
	f.Add([]byte{7, 1, 7, 2, 7, 3, 2, 2, 2, 3, 2, 4, 2, 5})
	proc := pdesc.Builtin("scalar")
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProg(data)
		args := []interface{}{1.25, -0.5, int64(3)}
		const maxCycles = 20000

		mr, outR, errR := runEngine(prog, proc, EngineReference, maxCycles, args)

		counts := make([]int64, len(prog.Instrs))
		for i := range counts {
			if len(data) > 0 {
				counts[i] = int64(data[i%len(data)])
			} else {
				counts[i] = 1
			}
		}
		sets := []*SuperSet{MineSuperinsts(prog, counts, SuperOpts{})}
		// Adversarial explicit ranges straight from the fuzz input.
		adv := &SuperSet{}
		for i := 0; i+1 < len(data) && i < 8; i += 2 {
			adv.Ranges = append(adv.Ranges, SeqRange{
				Start: int(data[i]) - 64,
				End:   int(data[i+1]) - 64,
			})
		}
		sets = append(sets, adv)

		for si, set := range sets {
			m := NewMachine(proc)
			m.Engine = EnginePrepared
			m.MaxCycles = maxCycles
			m.SuperSet = set
			outP, errP := m.Run(prog, cloneArgs(args)...)
			if (errR == nil) != (errP == nil) {
				t.Fatalf("set %d: error mismatch: reference %v, fused %v", si, errR, errP)
			}
			if errR != nil && errR.Error() != errP.Error() {
				t.Fatalf("set %d: error text mismatch:\n  reference: %v\n  fused:     %v", si, errR, errP)
			}
			if mr.Cycles != m.Cycles || mr.Executed != m.Executed {
				t.Fatalf("set %d: cycles %d vs %d, executed %d vs %d", si, mr.Cycles, m.Cycles, mr.Executed, m.Executed)
			}
			if !reflect.DeepEqual(mr.ClassCounts, m.ClassCounts) {
				t.Fatalf("set %d: ClassCounts %v vs %v", si, mr.ClassCounts, m.ClassCounts)
			}
			if errR == nil {
				bitsEqResults(t, outR, outP)
			}
		}
	})
}
