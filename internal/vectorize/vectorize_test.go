package vectorize

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mat2c/internal/ir"
	"mat2c/internal/lower"
	"mat2c/internal/mlang"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
)

func compileOpt(t *testing.T, src string, params ...sema.Type) *ir.Func {
	t.Helper()
	file, err := mlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	entry := file.Funcs[0].Name
	info, err := sema.Analyze(file, entry, params)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(f, 1)
	return f
}

func dynVec() sema.Type {
	return sema.Type{Class: sema.Real, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func dynCVec() sema.Type {
	return sema.Type{Class: sema.Complex, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

func countVecOps(f *ir.Func) (vloads, vstores, vaccs int) {
	opt.WalkStmts(f.Body, func(s ir.Stmt) {
		if st, ok := s.(*ir.Store); ok && st.Val.Kind().IsVector() {
			vstores++
		}
		if a, ok := s.(*ir.Assign); ok && a.Dst.Lanes > 1 {
			vaccs++
		}
		opt.StmtExprs(s, func(e ir.Expr) {
			opt.WalkExpr(e, func(x ir.Expr) {
				if _, ok := x.(*ir.VecLoad); ok {
					vloads++
				}
			})
		})
	})
	return
}

func TestVectorizeElementwiseLoop(t *testing.T) {
	src := `function y = f(a, b)
n = length(a);
y = zeros(1, n);
for i = 1:n
    y(i) = a(i) * b(i) + 1;
end
end`
	f := compileOpt(t, src, dynVec(), dynVec())
	n := Apply(f, pdesc.Builtin("dspasip"))
	if n == 0 {
		t.Fatalf("loop not vectorized:\n%s", ir.Print(f))
	}
	vloads, vstores, _ := countVecOps(f)
	if vloads < 2 || vstores < 1 {
		t.Errorf("vloads=%d vstores=%d:\n%s", vloads, vstores, ir.Print(f))
	}
}

func TestVectorizeReduction(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * b(i);
end
end`
	f := compileOpt(t, src, dynVec(), dynVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n == 0 {
		t.Fatalf("reduction not vectorized:\n%s", ir.Print(f))
	}
	_, _, vaccs := countVecOps(f)
	if vaccs == 0 {
		t.Errorf("no vector accumulator:\n%s", ir.Print(f))
	}
}

func TestVectorizeRejectsRecurrence(t *testing.T) {
	// IIR-style loop-carried dependence must not vectorize.
	src := `function y = f(x)
n = length(x);
y = zeros(1, n);
y(1) = x(1);
for i = 2:n
    y(i) = y(i-1) * 0.5 + x(i);
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n != 0 {
		t.Fatalf("recurrence wrongly vectorized:\n%s", ir.Print(f))
	}
}

func TestVectorizeRejectsStride2WithoutStridedLoads(t *testing.T) {
	// Stride-2 access needs the vlds instruction; nocomplex lacks it.
	src := `function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:fix(n/2)
    y(i) = x(2*i);
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("nocomplex")); n != 0 {
		t.Fatalf("strided access wrongly vectorized without vlds:\n%s", ir.Print(f))
	}
}

func TestVectorizeRejectsNonAffineIndex(t *testing.T) {
	// A rounded float index is not affine in the counter.
	src := `function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n/2
    y(i) = x(2*i);
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n != 0 {
		t.Fatalf("non-affine index wrongly vectorized:\n%s", ir.Print(f))
	}
}

func TestVectorizeIfConvertsConditionalReduction(t *testing.T) {
	src := `function s = f(x)
s = 0;
for i = 1:length(x)
    if x(i) > 0
        s = s + x(i);
    end
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n == 0 {
		t.Fatalf("conditional reduction not if-converted:\n%s", ir.Print(f))
	}
	hasSelect := false
	opt.WalkStmts(f.Body, func(s ir.Stmt) {
		opt.StmtExprs(s, func(e ir.Expr) {
			opt.WalkExpr(e, func(x ir.Expr) {
				if _, ok := x.(*ir.Select); ok {
					hasSelect = true
				}
			})
		})
	})
	if !hasSelect {
		t.Errorf("expected a select in the vector loop:\n%s", ir.Print(f))
	}
}

func TestVectorizeIfConvertsConditionalStore(t *testing.T) {
	src := `function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(i);
    if x(i) < 0
        y(i) = 0;
    end
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n == 0 {
		t.Fatalf("conditional store not if-converted:\n%s", ir.Print(f))
	}
}

func TestVectorizeRejectsConditionalWithElse(t *testing.T) {
	// If/else arms are not if-converted (only single-arm predication).
	src := `function s = f(x)
s = 0;
for i = 1:length(x)
    q = 0;
    if x(i) > 0
        q = x(i);
    else
        q = -2 * x(i);
    end
    s = s + q;
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n != 0 {
		t.Fatalf("else arm wrongly vectorized:\n%s", ir.Print(f))
	}
}

func TestVectorizeRejectsNestedIf(t *testing.T) {
	src := `function s = f(x)
s = 0;
for i = 1:length(x)
    if x(i) > 0
        if x(i) < 10
            s = s + x(i);
        end
    end
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n != 0 {
		t.Fatal("nested conditional wrongly vectorized")
	}
}

func TestVectorizeScalarTargetDisabled(t *testing.T) {
	src := `function y = f(a)
n = length(a);
y = zeros(1, n);
for i = 1:n
    y(i) = a(i) + 1;
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("scalar")); n != 0 {
		t.Fatal("vectorized for a scalar target")
	}
}

func TestVectorizeComplexUsesComplexLanes(t *testing.T) {
	src := `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`
	f := compileOpt(t, src, dynCVec(), dynCVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n == 0 {
		t.Fatalf("complex reduction not vectorized:\n%s", ir.Print(f))
	}
	// Lanes must be ComplexLanes (2), not SIMDWidth (4).
	found := false
	opt.WalkStmts(f.Body, func(s ir.Stmt) {
		opt.StmtExprs(s, func(e ir.Expr) {
			opt.WalkExpr(e, func(x ir.Expr) {
				if vl, ok := x.(*ir.VecLoad); ok {
					found = true
					if vl.K.Lanes != 2 {
						t.Errorf("complex vload lanes = %d, want 2", vl.K.Lanes)
					}
				}
			})
		})
	})
	if !found {
		t.Error("no vector loads emitted")
	}
}

func TestVectorizeInductionValueStore(t *testing.T) {
	// The loop counter appears in value position: requires a ramp.
	src := `function y = f(n)
y = zeros(1, n);
for i = 1:n
    y(i) = 2 * i;
end
end`
	f := compileOpt(t, src, sema.IntScalar)
	if n := Apply(f, pdesc.Builtin("dspasip")); n == 0 {
		t.Fatalf("induction store not vectorized:\n%s", ir.Print(f))
	}
	hasRamp := false
	opt.WalkStmts(f.Body, func(s ir.Stmt) {
		opt.StmtExprs(s, func(e ir.Expr) {
			opt.WalkExpr(e, func(x ir.Expr) {
				if _, ok := x.(*ir.Ramp); ok {
					hasRamp = true
				}
			})
		})
	})
	if !hasRamp {
		t.Errorf("expected a ramp:\n%s", ir.Print(f))
	}
}

// ----- Semantic equivalence property tests -----

func runBoth(t *testing.T, src string, params []sema.Type, proc string, args []interface{}) ([]interface{}, []interface{}) {
	t.Helper()
	scalar := compileOpt(t, src, params...)
	vec := compileOpt(t, src, params...)
	Apply(vec, pdesc.Builtin(proc))

	clone := func(in []interface{}) []interface{} {
		out := make([]interface{}, len(in))
		for i, a := range in {
			if arr, ok := a.(*ir.Array); ok {
				out[i] = arr.Clone()
			} else {
				out[i] = a
			}
		}
		return out
	}
	ev1 := &ir.Evaluator{}
	r1, err := ev1.Run(scalar, clone(args)...)
	if err != nil {
		t.Fatalf("scalar run: %v", err)
	}
	ev2 := &ir.Evaluator{}
	r2, err := ev2.Run(vec, clone(args)...)
	if err != nil {
		t.Fatalf("vector run: %v\nIR:\n%s", err, ir.Print(vec))
	}
	return r1, r2
}

func nearlyEq(a, b interface{}) bool {
	switch x := a.(type) {
	case float64:
		y := b.(float64)
		return math.Abs(x-y) <= 1e-9*(1+math.Abs(x))
	case int64:
		return x == b.(int64)
	case complex128:
		y := b.(complex128)
		d := x - y
		return math.Hypot(real(d), imag(d)) <= 1e-9*(1+math.Hypot(real(x), imag(x)))
	case *ir.Array:
		y := b.(*ir.Array)
		if x.Rows != y.Rows || x.Cols != y.Cols {
			return false
		}
		for i := 0; i < x.Len(); i++ {
			d := x.At(i) - y.At(i)
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				return false
			}
		}
		return true
	}
	return false
}

// Property: for every kernel, every SIMD width, and many random lengths
// (including 0, 1, and non-multiples of the width), vectorized execution
// equals scalar execution.
func TestVectorizeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	procs := []string{"wide2", "dspasip", "wide8"}

	kernels := []struct {
		name   string
		src    string
		params []sema.Type
		mk     func(n int) []interface{}
	}{
		{
			name: "saxpy",
			src: `function y = f(a, x, b)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = a * x(i) + b(i);
end
end`,
			params: []sema.Type{sema.RealScalar, dynVec(), dynVec()},
			mk: func(n int) []interface{} {
				return []interface{}{r.NormFloat64(), randArr(n, r), randArr(n, r)}
			},
		},
		{
			name: "dot",
			src: `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * b(i);
end
end`,
			params: []sema.Type{dynVec(), dynVec()},
			mk: func(n int) []interface{} {
				return []interface{}{randArr(n, r), randArr(n, r)}
			},
		},
		{
			name: "maxabs",
			src: `function m = f(x)
m = 0;
for i = 1:length(x)
    m = max(m, abs(x(i)));
end
end`,
			params: []sema.Type{dynVec()},
			mk:     func(n int) []interface{} { return []interface{}{randArr(n, r)} },
		},
		{
			name: "cdot",
			src: `function s = f(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`,
			params: []sema.Type{dynCVec(), dynCVec()},
			mk: func(n int) []interface{} {
				return []interface{}{randCArr(n, r), randCArr(n, r)}
			},
		},
		{
			name: "iota-shift",
			src: `function y = f(n, x)
y = zeros(1, n);
for i = 1:n
    y(i) = i * 0.5 + x(1);
end
end`,
			params: []sema.Type{sema.IntScalar, dynVec()},
			mk: func(n int) []interface{} {
				return []interface{}{int64(n), randArr(3, r)}
			},
		},
		{
			name: "inplace-scale",
			src: `function x = f(x)
for i = 1:length(x)
    x(i) = x(i) * 3;
end
end`,
			params: []sema.Type{dynVec()},
			mk:     func(n int) []interface{} { return []interface{}{randArr(n, r)} },
		},
		{
			name: "cond-sum",
			src: `function s = f(x)
s = 0;
for i = 1:length(x)
    if x(i) > 0
        s = s + x(i) * x(i);
    end
end
end`,
			params: []sema.Type{dynVec()},
			mk:     func(n int) []interface{} { return []interface{}{randArr(n, r)} },
		},
		{
			name: "clamp",
			src: `function y = f(x, lo)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(i);
    if x(i) < lo
        y(i) = lo;
    end
end
end`,
			params: []sema.Type{dynVec(), sema.RealScalar},
			mk: func(n int) []interface{} {
				return []interface{}{randArr(n, r), -0.5}
			},
		},
		{
			name: "cond-minmax",
			src: `function m = f(x, g)
m = 1000;
for i = 1:length(x)
    if g(i) > 0
        m = min(m, x(i));
    end
end
end`,
			params: []sema.Type{dynVec(), dynVec()},
			mk: func(n int) []interface{} {
				return []interface{}{randArr(n, r), randArr(n, r)}
			},
		},
	}

	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64}
	for _, kern := range kernels {
		for _, proc := range procs {
			for _, n := range lengths {
				if kern.name == "iota-shift" && n == 0 {
					continue // x(1) faults on empty input regardless of vectorization
				}
				args := kern.mk(n)
				r1, r2 := runBoth(t, kern.src, kern.params, proc, args)
				for i := range r1 {
					if !nearlyEq(r1[i], r2[i]) {
						t.Errorf("%s/%s n=%d: result %d differs: %v vs %v",
							kern.name, proc, n, i, r1[i], r2[i])
					}
				}
			}
		}
	}
}

func randArr(n int, r *rand.Rand) *ir.Array {
	a := ir.NewFloatArray(1, n)
	for i := range a.F {
		a.F[i] = r.NormFloat64()
	}
	return a
}

func randCArr(n int, r *rand.Rand) *ir.Array {
	a := ir.NewComplexArray(1, n)
	for i := range a.C {
		a.C[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return a
}

func TestVectorizePrintsVectorOps(t *testing.T) {
	src := `function y = f(a)
n = length(a);
y = zeros(1, n);
for i = 1:n
    y(i) = a(i) + 1;
end
end`
	f := compileOpt(t, src, dynVec())
	Apply(f, pdesc.Builtin("dspasip"))
	p := ir.Print(f)
	if !strings.Contains(p, "vload4") {
		t.Errorf("expected vload4 in printout:\n%s", p)
	}
	if !strings.Contains(p, "step 4") {
		t.Errorf("expected main loop step 4:\n%s", p)
	}
}

func TestVectorizeStridedLoad(t *testing.T) {
	// Decimation: x(2*i) has stride 2 — vectorizable only on targets
	// with a strided-load instruction.
	src := `function y = f(x, m)
y = zeros(1, m);
for i = 1:m
    y(i) = x(2 * i);
end
end`
	f := compileOpt(t, src, dynVec(), sema.IntScalar)
	if n := Apply(f, pdesc.Builtin("dspasip")); n == 0 {
		t.Fatalf("decimation not vectorized on dspasip:\n%s", ir.Print(f))
	}
	found := false
	opt.WalkStmts(f.Body, func(s ir.Stmt) {
		opt.StmtExprs(s, func(e ir.Expr) {
			opt.WalkExpr(e, func(x ir.Expr) {
				if vl, ok := x.(*ir.VecLoad); ok && vl.StrideOr1() == 2 {
					found = true
				}
			})
		})
	})
	if !found {
		t.Errorf("expected a stride-2 vector load:\n%s", ir.Print(f))
	}
	// The nocomplex target also has vlds; a target without it must not
	// vectorize this loop.
	f2 := compileOpt(t, src, dynVec(), sema.IntScalar)
	if n := Apply(f2, pdesc.Builtin("nocomplex")); n != 0 {
		t.Error("nocomplex target has no vlds; decimation must stay scalar")
	}
}

func TestVectorizeReversedLoad(t *testing.T) {
	// x(n-i+1): stride -1 — needs the strided-load instruction too.
	src := `function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(n - i + 1);
end
end`
	f := compileOpt(t, src, dynVec())
	if n := Apply(f, pdesc.Builtin("dspasip")); n == 0 {
		t.Fatalf("reversal not vectorized:\n%s", ir.Print(f))
	}
}

func TestVectorizeStridedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	kernels := []struct {
		src    string
		params []sema.Type
		args   func(n int) []interface{}
	}{
		{
			`function y = f(x, m)
y = zeros(1, m);
for i = 1:m
    y(i) = x(2 * i) + x(2 * i - 1);
end
end`,
			[]sema.Type{dynVec(), sema.IntScalar},
			func(n int) []interface{} { return []interface{}{randArr(2*n+2, r), int64(n)} },
		},
		{
			`function y = f(x)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = x(n - i + 1) * 2;
end
end`,
			[]sema.Type{dynVec()},
			func(n int) []interface{} { return []interface{}{randArr(n, r)} },
		},
	}
	for ki, k := range kernels {
		for _, n := range []int{1, 3, 8, 17} {
			args := k.args(n)
			r1, r2 := runBoth(t, k.src, k.params, "dspasip", args)
			for i := range r1 {
				if !nearlyEq(r1[i], r2[i]) {
					t.Errorf("kernel %d n=%d: %v vs %v", ki, n, r1[i], r2[i])
				}
			}
		}
	}
}
