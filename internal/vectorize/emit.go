package vectorize

import (
	"math"

	"mat2c/internal/ir"
	"mat2c/internal/opt"
)

// emit builds the vectorized replacement for loop: preheader, main
// vector loop stepping by lanes, horizontal reduction combines, and a
// scalar epilogue running the original body for the remainder.
func (v *vectorizer) emit(loop *ir.For, classified []vstmt, reds []*reduction, lanes int) []ir.Stmt {
	var out []ir.Stmt
	k := loop.Var
	W := int64(lanes)

	hoist := func(e ir.Expr, name string) ir.Expr {
		switch e.(type) {
		case *ir.ConstInt, *ir.VarRef:
			return e
		}
		t := v.fn.NewSym(name, ir.Int, false)
		v.fn.Locals = append(v.fn.Locals, t)
		out = append(out, &ir.Assign{Dst: t, Src: e})
		return ir.V(t)
	}

	lo := hoist(loop.Lo, "vlo")
	hi := hoist(loop.Hi, "vhi")
	// trip = max(hi - lo + 1, 0); main = (trip / W) * W
	trip := ir.B(ir.OpMax, ir.IAdd(ir.ISub(hi, lo), ir.CI(1)), ir.CI(0))
	main := hoist(ir.IMul(ir.B(ir.OpDiv, trip, ir.CI(W)), ir.CI(W)), "vmain")
	mainHi := hoist(ir.ISub(ir.IAdd(lo, main), ir.CI(1)), "vmhi")

	// Vector accumulators.
	for _, r := range reds {
		vacc := v.fn.NewSym(r.acc.Name+"_v", r.acc.Elem, false)
		vacc.Lanes = lanes
		v.fn.Locals = append(v.fn.Locals, vacc)
		r.vacc = vacc
		out = append(out, &ir.Assign{Dst: vacc,
			Src: &ir.Broadcast{X: reductionIdentity(r.op, r.acc.Elem), K: ir.Kind{Base: r.acc.Elem, Lanes: lanes}}})
	}

	// Main vector loop. Predicated statements (if-conversion) blend with
	// a lane-wise select: conditional stores read-modify-write their own
	// address, conditional reductions keep the accumulator lane where the
	// predicate is false.
	var body []ir.Stmt
	for _, c := range classified {
		var mask ir.Expr
		if c.cond != nil {
			mask = v.vec(c.cond, k, lanes)
		}
		if c.store != nil {
			val := v.vec(c.store.Val, k, lanes)
			if mask != nil {
				old := &ir.VecLoad{Arr: c.store.Arr, Index: c.store.Index,
					K: ir.Kind{Base: c.store.Arr.Elem, Lanes: lanes}}
				val = &ir.Select{Cond: mask, Then: val, Else: old,
					K: ir.Kind{Base: c.store.Arr.Elem, Lanes: lanes}}
			}
			body = append(body, &ir.Store{Arr: c.store.Arr, Index: c.store.Index, Val: val})
			continue
		}
		r := c.red
		vk := ir.Kind{Base: r.acc.Elem, Lanes: lanes}
		upd := ir.Expr(&ir.Bin{Op: r.op, X: ir.V(r.vacc), Y: v.vec(r.rest, k, lanes), K: vk})
		if mask != nil {
			upd = &ir.Select{Cond: mask, Then: upd, Else: ir.V(r.vacc), K: vk}
		}
		body = append(body, &ir.Assign{Dst: r.vacc, Src: upd})
	}
	out = append(out, &ir.For{Var: k, Lo: lo, Hi: mainHi, Step: W, Body: body})

	// Horizontal reductions: acc = acc ⊕ reduce(vacc). The accumulator
	// still holds its pre-loop value here.
	for _, r := range reds {
		red := &ir.Reduce{Op: r.op, X: ir.V(r.vacc), K: ir.Kind{Base: r.acc.Elem, Lanes: 1}}
		out = append(out, &ir.Assign{Dst: r.acc,
			Src: &ir.Bin{Op: r.op, X: ir.V(r.acc), Y: red, K: ir.Kind{Base: r.acc.Elem, Lanes: 1}}})
	}

	// Scalar epilogue with the original body.
	epiBody := make([]ir.Stmt, len(loop.Body))
	for i, s := range loop.Body {
		epiBody[i] = opt.CloneStmt(s)
	}
	out = append(out, &ir.For{Var: k, Lo: ir.IAdd(lo, main), Hi: hi, Step: 1, Body: epiBody})
	return out
}

func reductionIdentity(op ir.Op, elem ir.BaseKind) ir.Expr {
	switch op {
	case ir.OpAdd:
		if elem == ir.Complex {
			return ir.CC(0)
		}
		return ir.CF(0)
	case ir.OpMin:
		return ir.CF(math.Inf(1))
	case ir.OpMax:
		return ir.CF(math.Inf(-1))
	}
	return ir.CF(0)
}

// vec widens a substituted scalar expression to lanes. Loop-invariant
// subtrees become broadcasts; stride-1 loads become vector loads; the
// counter becomes a ramp.
func (v *vectorizer) vec(e ir.Expr, k *ir.Sym, lanes int) ir.Expr {
	// Whole-subtree invariance: broadcast once.
	if !readsVar(e, k) {
		return &ir.Broadcast{X: e, K: ir.Kind{Base: e.Kind().Base, Lanes: lanes}}
	}
	switch x := e.(type) {
	case *ir.VarRef:
		// x.Sym == k here (invariant case handled above).
		return &ir.Ramp{Base: ir.V(k), Step: 1, K: ir.Kind{Base: ir.Int, Lanes: lanes}}
	case *ir.Load:
		st := affineStride(x.Index, k)
		if st != nil && *st == 0 {
			return &ir.Broadcast{X: x, K: ir.Kind{Base: x.Arr.Elem, Lanes: lanes}}
		}
		stride := int64(1)
		if st != nil {
			stride = *st
		}
		// Stride 1 is a plain vector load; other strides were admitted
		// by legality only if the target has a strided-load instruction.
		return &ir.VecLoad{Arr: x.Arr, Index: x.Index, Stride: stride,
			K: ir.Kind{Base: x.Arr.Elem, Lanes: lanes}}
	case *ir.Bin:
		return &ir.Bin{Op: x.Op,
			X: v.vec(x.X, k, lanes),
			Y: v.vec(x.Y, k, lanes),
			K: ir.Kind{Base: x.K.Base, Lanes: lanes}}
	case *ir.Un:
		return &ir.Un{Op: x.Op, X: v.vec(x.X, k, lanes),
			K: ir.Kind{Base: x.K.Base, Lanes: lanes}}
	}
	// Unreachable given the legality checks; broadcast as a safe default.
	return &ir.Broadcast{X: e, K: ir.Kind{Base: e.Kind().Base, Lanes: lanes}}
}
