// Package vectorize implements the loop auto-vectorizer: it widens
// innermost counted loops to the target's SIMD width, the "data
// parallelism" half of the paper's contribution.
//
// The legality model is the classic one for short-vector DSPs:
//
//   - only innermost, unit-step, straight-line counted loops are
//     candidates;
//   - every memory access must be affine in the counter with stride 0
//     (invariant, broadcast) or 1 (contiguous, vector load/store);
//   - arrays both read and written in the loop must be accessed at the
//     same affine address by every access (no loop-carried distance);
//   - scalar state must be either loop-local (forward-substituted) or a
//     recognized reduction (sum, min, max), which is rewritten to a
//     vector accumulator with a final horizontal reduce;
//   - the lane count comes from the processor description: SIMDWidth
//     float lanes, ComplexLanes complex lanes (a loop touching complex
//     data is widened to the complex lane count).
//
// A scalar epilogue loop handles trip counts that are not a multiple of
// the width. Loops that fail any test are left untouched — the scalar
// code remains correct, which is exactly how the paper's compiler
// degrades.
package vectorize

import (
	"mat2c/internal/ir"
	"mat2c/internal/opt"
	"mat2c/internal/pdesc"
)

// Apply vectorizes all eligible innermost loops of f for processor p.
// It returns the number of loops vectorized.
func Apply(f *ir.Func, p *pdesc.Processor) int {
	if p.SIMDWidth < 2 {
		return 0
	}
	v := &vectorizer{fn: f, proc: p}
	v.globalReads = scalarReadCounts(f)
	v.outsideSafe = computeOutsideSafety(f)
	f.Body = v.block(f.Body)
	return v.count
}

type vectorizer struct {
	fn   *ir.Func
	proc *pdesc.Processor

	// globalReads counts scalar reads across the whole function, used to
	// prove a loop temp is not live outside its loop.
	globalReads map[*ir.Sym]int
	// outsideSafe maps (loop, sym) to whether every read of sym outside
	// that loop is preceded by a redefinition (so dropping the loop's
	// assignments to sym cannot change an observable value).
	outsideSafe map[*ir.For]map[*ir.Sym]bool
	count       int
}

// computeOutsideSafety determines, for every For loop and every scalar
// assigned in it, whether reads of that scalar elsewhere are harmless:
// a read is harmless when it sits inside some (other) For body that
// unconditionally assigns the scalar before reading it (the lowered
// shape of MATLAB loop variables). Reads outside any such loop make the
// scalar live-out and unsafe to drop.
func computeOutsideSafety(f *ir.Func) map[*ir.For]map[*ir.Sym]bool {
	// defBeforeUse[loop][sym]: the loop body assigns sym at top level
	// before any statement that reads it.
	defBeforeUse := map[*ir.For]map[*ir.Sym]bool{}
	var loops []*ir.For
	opt.WalkStmts(f.Body, func(s ir.Stmt) {
		if l, ok := s.(*ir.For); ok {
			loops = append(loops, l)
			m := map[*ir.Sym]bool{}
			read := map[*ir.Sym]bool{}
			for _, bs := range l.Body {
				// Reads of this statement (recursively).
				opt.WalkStmts([]ir.Stmt{bs}, func(inner ir.Stmt) {
					opt.StmtExprs(inner, func(e ir.Expr) {
						opt.WalkExpr(e, func(x ir.Expr) {
							if vr, ok := x.(*ir.VarRef); ok {
								read[vr.Sym] = true
							}
						})
					})
				})
				if a, ok := bs.(*ir.Assign); ok && !read[a.Dst] {
					m[a.Dst] = true
				}
			}
			defBeforeUse[l] = m
		}
	})

	// For each read of a sym, find the innermost containing loop.
	type readSite struct {
		sym  *ir.Sym
		loop *ir.For // nil when outside every loop
	}
	var sites []readSite
	var walk func(stmts []ir.Stmt, cur *ir.For)
	walk = func(stmts []ir.Stmt, cur *ir.For) {
		for _, s := range stmts {
			opt.StmtExprs(s, func(e ir.Expr) {
				opt.WalkExpr(e, func(x ir.Expr) {
					if vr, ok := x.(*ir.VarRef); ok {
						sites = append(sites, readSite{vr.Sym, cur})
					}
				})
			})
			switch s := s.(type) {
			case *ir.For:
				walk(s.Body, s)
			case *ir.While:
				walk(s.Body, cur)
			case *ir.If:
				walk(s.Then, cur)
				walk(s.Else, cur)
			}
		}
	}
	walk(f.Body, nil)

	out := map[*ir.For]map[*ir.Sym]bool{}
	for _, l := range loops {
		m := map[*ir.Sym]bool{}
		for sym := range assignCounts(l.Body) {
			safe := true
			for _, site := range sites {
				if site.sym != sym || site.loop == l {
					continue
				}
				// Harmless only when the containing loop redefines sym
				// before reading it.
				if site.loop == nil || !defBeforeUse[site.loop][sym] {
					safe = false
					break
				}
			}
			m[sym] = safe
		}
		out[l] = m
	}
	return out
}

// scalarReadCounts counts VarRef occurrences per symbol over the whole
// function.
func scalarReadCounts(f *ir.Func) map[*ir.Sym]int {
	counts := map[*ir.Sym]int{}
	opt.WalkStmts(f.Body, func(s ir.Stmt) {
		opt.StmtExprs(s, func(e ir.Expr) {
			opt.WalkExpr(e, func(x ir.Expr) {
				if v, ok := x.(*ir.VarRef); ok {
					counts[v.Sym]++
				}
			})
		})
	})
	return counts
}

func (v *vectorizer) block(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.For:
			s.Body = v.block(s.Body)
			if repl, ok := v.tryVectorize(s); ok {
				out = append(out, repl...)
				v.count++
				continue
			}
		case *ir.While:
			s.Body = v.block(s.Body)
		case *ir.If:
			s.Then = v.block(s.Then)
			s.Else = v.block(s.Else)
		}
		out = append(out, s)
	}
	return out
}

// reduction describes a recognized reduction statement.
type reduction struct {
	acc  *ir.Sym
	op   ir.Op   // OpAdd, OpMin, OpMax
	rest ir.Expr // fully substituted update term
	vacc *ir.Sym // created vector accumulator
}

// vstmt is a classified body statement. A non-nil cond marks an
// if-converted (predicated) statement: the store or reduction applies
// only in lanes where cond is nonzero.
type vstmt struct {
	store *ir.Store // substituted store, or
	red   *reduction
	cond  ir.Expr // substituted predicate, nil when unconditional
}

func (v *vectorizer) tryVectorize(loop *ir.For) ([]ir.Stmt, bool) {
	if loop.Step != 1 {
		return nil, false
	}
	// Straight-line body, plus single-level conditionals that can be
	// if-converted (no else arm, body of stores/reductions only).
	for _, s := range loop.Body {
		switch s := s.(type) {
		case *ir.Assign, *ir.Store:
		case *ir.If:
			if len(s.Else) != 0 {
				return nil, false
			}
			for _, ts := range s.Then {
				switch ts.(type) {
				case *ir.Assign, *ir.Store:
				default:
					return nil, false
				}
			}
		default:
			return nil, false
		}
	}

	k := loop.Var
	loadedInBody := map[*ir.Sym]bool{}
	storedInBody := map[*ir.Sym]bool{}

	// Pass 1: classify statements, forward-substituting loop temps.
	sub := map[*ir.Sym]ir.Expr{} // temp -> substituted defining expr
	bodyReads := bodyScalarReads(loop.Body)
	var classified []vstmt
	var reds []*reduction

	substitute := func(e ir.Expr) ir.Expr {
		return opt.RewriteExpr(e, func(x ir.Expr) ir.Expr {
			if vr, ok := x.(*ir.VarRef); ok {
				if def, ok := sub[vr.Sym]; ok {
					return def
				}
			}
			return x
		})
	}

	assignedOnce := assignCounts(loop.Body)

	// readBefore tracks scalars read by statements processed so far. A
	// scalar assigned after it has been read carries a value across
	// iterations (e.g. an IIR delay line w2 = w1) — not a loop-local
	// temp; such loops are rejected.
	readBefore := map[*ir.Sym]bool{}
	noteReads := func(s ir.Stmt) {
		opt.WalkStmts([]ir.Stmt{s}, func(inner ir.Stmt) {
			opt.StmtExprs(inner, func(e ir.Expr) {
				opt.WalkExpr(e, func(x ir.Expr) {
					if v, ok := x.(*ir.VarRef); ok {
						readBefore[v.Sym] = true
					}
				})
			})
		})
	}

	// classify handles one Store/Assign, under an optional predicate.
	classify := func(s ir.Stmt, cond ir.Expr) bool {
		switch s := s.(type) {
		case *ir.Store:
			ns := &ir.Store{Arr: s.Arr, Index: substitute(s.Index), Val: substitute(s.Val)}
			storedInBody[s.Arr] = true
			collectLoads(ns.Index, loadedInBody)
			collectLoads(ns.Val, loadedInBody)
			classified = append(classified, vstmt{store: ns, cond: cond})
			return true
		case *ir.Assign:
			src := substitute(s.Src)
			if red, ok := matchReduction(s.Dst, src); ok {
				// The accumulator must not be read by any other body
				// statement (prefix-sum style dependences are carried).
				if bodyReads[s.Dst] > 1 || assignedOnce[s.Dst] > 1 {
					return false
				}
				if red.op != ir.OpAdd && s.Dst.Elem != ir.Float {
					return false // min/max only on floats
				}
				if s.Dst.Elem == ir.Int {
					return false
				}
				collectLoads(red.rest, loadedInBody)
				classified = append(classified, vstmt{red: red, cond: cond})
				reds = append(reds, red)
				return true
			}
			if cond != nil {
				// Conditionally-defined temps are not if-converted.
				return false
			}
			// Loop temp: single assignment, defined before every use in
			// the iteration, not self-referential, and not observably
			// live outside the loop.
			if assignedOnce[s.Dst] != 1 || readsVar(src, s.Dst) || readBefore[s.Dst] {
				return false
			}
			if !v.outsideSafe[loop][s.Dst] {
				return false // a read elsewhere could see the dropped value
			}
			sub[s.Dst] = src
			return true
		}
		return false
	}

	for _, s := range loop.Body {
		switch s := s.(type) {
		case *ir.Store, *ir.Assign:
			if !classify(s, nil) {
				return nil, false
			}
		case *ir.If:
			// If-conversion: predicate every statement of the arm.
			cond := substitute(s.Cond)
			collectLoads(cond, loadedInBody)
			for _, ts := range s.Then {
				if !classify(ts, cond) {
					return nil, false
				}
			}
		}
		noteReads(s)
	}
	if len(classified) == 0 {
		return nil, false
	}

	// Pass 2: affine legality for every memory access.
	lanesComplex := false
	for _, c := range classified {
		var exprs []ir.Expr
		if c.cond != nil {
			exprs = append(exprs, c.cond)
		}
		if c.store != nil {
			st := affineStride(c.store.Index, k)
			if st == nil || *st != 1 {
				return nil, false
			}
			if c.store.Arr.Elem == ir.Complex {
				lanesComplex = true
			}
			exprs = append(exprs, c.store.Val)
		} else {
			exprs = append(exprs, c.red.rest)
			if c.red.acc.Elem == ir.Complex {
				lanesComplex = true
			}
		}
		for _, e := range exprs {
			ok := true
			opt.WalkExpr(e, func(x ir.Expr) {
				switch x := x.(type) {
				case *ir.Load:
					st := affineStride(x.Index, k)
					if st == nil {
						ok = false
						return
					}
					if *st != 0 && *st != 1 && !v.hasStridedLoad(x.Arr.Elem) {
						ok = false
					}
					if x.Arr.Elem == ir.Complex {
						lanesComplex = true
					}
				case *ir.VecLoad, *ir.Broadcast, *ir.Reduce, *ir.Ramp:
					ok = false // already vectorized? bail out
				}
			})
			if !ok {
				return nil, false
			}
		}
	}

	// Pass 3: dependence check for arrays both loaded and stored.
	if !v.checkReadWriteArrays(classified, k, loadedInBody, storedInBody) {
		return nil, false
	}

	lanes := v.proc.SIMDWidth
	if lanesComplex {
		lanes = v.proc.ComplexLanes
	}
	if lanes < 2 {
		return nil, false
	}

	return v.emit(loop, classified, reds, lanes), true
}

// hasStridedLoad reports whether the target provides a strided vector
// load for the element kind.
func (v *vectorizer) hasStridedLoad(elem ir.BaseKind) bool {
	if elem == ir.Complex {
		return v.proc.HasInstr("vclds")
	}
	return v.proc.HasInstr("vlds")
}

// bodyScalarReads counts scalar reads within the loop body.
func bodyScalarReads(stmts []ir.Stmt) map[*ir.Sym]int {
	counts := map[*ir.Sym]int{}
	opt.WalkStmts(stmts, func(s ir.Stmt) {
		opt.StmtExprs(s, func(e ir.Expr) {
			opt.WalkExpr(e, func(x ir.Expr) {
				if v, ok := x.(*ir.VarRef); ok {
					counts[v.Sym]++
				}
			})
		})
	})
	return counts
}

func assignCounts(stmts []ir.Stmt) map[*ir.Sym]int {
	counts := map[*ir.Sym]int{}
	opt.WalkStmts(stmts, func(s ir.Stmt) {
		if a, ok := s.(*ir.Assign); ok {
			counts[a.Dst]++
		}
	})
	return counts
}

func collectLoads(e ir.Expr, set map[*ir.Sym]bool) {
	opt.WalkExpr(e, func(x ir.Expr) {
		if ld, ok := x.(*ir.Load); ok {
			set[ld.Arr] = true
		}
	})
}

func readsVar(e ir.Expr, s *ir.Sym) bool {
	found := false
	opt.WalkExpr(e, func(x ir.Expr) {
		if v, ok := x.(*ir.VarRef); ok && v.Sym == s {
			found = true
		}
	})
	return found
}

// matchReduction recognizes acc = acc ⊕ rest (or rest ⊕ acc for
// commutative ⊕) with ⊕ ∈ {+, min, max} and rest free of acc.
func matchReduction(dst *ir.Sym, src ir.Expr) (*reduction, bool) {
	b, ok := src.(*ir.Bin)
	if !ok {
		return nil, false
	}
	switch b.Op {
	case ir.OpAdd, ir.OpMin, ir.OpMax:
	default:
		return nil, false
	}
	if vr, ok := b.X.(*ir.VarRef); ok && vr.Sym == dst && !readsVar(b.Y, dst) {
		return &reduction{acc: dst, op: b.Op, rest: b.Y}, true
	}
	if vr, ok := b.Y.(*ir.VarRef); ok && vr.Sym == dst && !readsVar(b.X, dst) {
		return &reduction{acc: dst, op: b.Op, rest: b.X}, true
	}
	return nil, false
}

// affineStride returns the stride of e as an affine function of k, or
// nil when e is not affine in k with a compile-time-constant stride.
func affineStride(e ir.Expr, k *ir.Sym) *int64 {
	s, ok := affine(e, k)
	if !ok {
		return nil
	}
	return &s
}

func affine(e ir.Expr, k *ir.Sym) (int64, bool) {
	switch x := e.(type) {
	case *ir.VarRef:
		if x.Sym == k {
			return 1, true
		}
		return 0, true
	case *ir.ConstInt:
		return 0, true
	case *ir.Bin:
		if x.K.Base != ir.Int {
			// Non-integer arithmetic cannot feed an address we accept.
			if readsVar(e, k) {
				return 0, false
			}
			return 0, true
		}
		a, aok := affine(x.X, k)
		b, bok := affine(x.Y, k)
		switch x.Op {
		case ir.OpAdd:
			if aok && bok {
				return a + b, true
			}
		case ir.OpSub:
			if aok && bok {
				return a - b, true
			}
		case ir.OpMul:
			if c, ok := x.X.(*ir.ConstInt); ok && bok {
				return c.V * b, true
			}
			if c, ok := x.Y.(*ir.ConstInt); ok && aok {
				return a * c.V, true
			}
			// product of two k-free values is k-free
			if aok && bok && a == 0 && b == 0 {
				return 0, true
			}
		default:
			if !readsVar(e, k) {
				return 0, true
			}
		}
		return 0, false
	default:
		if !readsVar2(e, k) {
			return 0, true
		}
	}
	return 0, false
}

// readsVar2 is readsVar over arbitrary expressions (incl. loads' indices).
func readsVar2(e ir.Expr, s *ir.Sym) bool { return readsVar(e, s) }

// checkReadWriteArrays verifies that arrays both loaded and stored are
// accessed at one common affine address.
func (v *vectorizer) checkReadWriteArrays(classified []vstmt, k *ir.Sym, loaded, stored map[*ir.Sym]bool) bool {
	type access struct {
		key string
	}
	// For each array in both sets, collect address keys.
	shared := map[*ir.Sym]bool{}
	for a := range stored {
		if loaded[a] {
			shared[a] = true
		}
	}
	if len(shared) == 0 {
		return true
	}
	addrs := map[*ir.Sym]map[string]bool{}
	record := func(arr *ir.Sym, idx ir.Expr) {
		if !shared[arr] {
			return
		}
		if addrs[arr] == nil {
			addrs[arr] = map[string]bool{}
		}
		addrs[arr][ir.ExprStr(idx)] = true
	}
	for _, c := range classified {
		recordLoads := func(e ir.Expr) {
			opt.WalkExpr(e, func(x ir.Expr) {
				if ld, ok := x.(*ir.Load); ok {
					record(ld.Arr, ld.Index)
				}
			})
		}
		if c.cond != nil {
			recordLoads(c.cond)
		}
		if c.store != nil {
			record(c.store.Arr, c.store.Index)
			recordLoads(c.store.Val)
			recordLoads(c.store.Index)
		} else {
			recordLoads(c.red.rest)
		}
	}
	for _, keys := range addrs {
		if len(keys) > 1 {
			return false
		}
	}
	return true
}
