package fleet_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mat2c/internal/fleet"
)

// TestAgentArtifactURLAdvertisement: the agent resolves a path-relative
// artifact advertisement against its coordinator URL and fires the hook
// exactly once, even across repeated registrations (heartbeats).
func TestAgentArtifactURLAdvertisement(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(fleet.RegisterReply{ID: "w1", ArtifactURL: "/artifact"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var mu sync.Mutex
	var urls []string
	a := &fleet.Agent{
		Coordinator: ts.URL,
		Self:        "http://worker:1",
		OnArtifactURL: func(u string) {
			mu.Lock()
			urls = append(urls, u)
			mu.Unlock()
		},
	}
	for i := 0; i < 3; i++ {
		if _, err := a.RegisterOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(urls) != 1 {
		t.Fatalf("hook fired %d times, want once", len(urls))
	}
	if want := ts.URL + "/artifact"; urls[0] != want {
		t.Fatalf("resolved %q, want %q", urls[0], want)
	}
}

// TestAgentArtifactURLAbsolutePassThrough: an absolute advertisement is
// handed to the hook unchanged.
func TestAgentArtifactURLAbsolutePassThrough(t *testing.T) {
	const abs = "http://cache.internal:9000/artifact"
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(fleet.RegisterReply{ID: "w1", ArtifactURL: abs})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	got := ""
	a := &fleet.Agent{
		Coordinator:   ts.URL,
		Self:          "http://worker:1",
		OnArtifactURL: func(u string) { got = u },
	}
	if _, err := a.RegisterOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != abs {
		t.Fatalf("resolved %q, want %q", got, abs)
	}
}

// TestAgentNoArtifactAdvertisement: a coordinator without a shared
// cache never fires the hook.
func TestAgentNoArtifactAdvertisement(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(fleet.RegisterReply{ID: "w1"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	a := &fleet.Agent{
		Coordinator:   ts.URL,
		Self:          "http://worker:1",
		OnArtifactURL: func(u string) { t.Errorf("hook fired with %q", u) },
	}
	if _, err := a.RegisterOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
}
