package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	mat2c "mat2c"
	"mat2c/internal/dse"
	"mat2c/internal/fleet"
	"mat2c/internal/isx"
)

// executeAcrossWorkers runs units round-robin over nWorkers simulated
// workers, each with a private compilation cache — the same isolation
// real fleet workers have.
func executeAcrossWorkers(t *testing.T, units []fleet.Unit, nWorkers int) []*fleet.UnitResult {
	t.Helper()
	caches := make([]*mat2c.Cache, nWorkers)
	for i := range caches {
		caches[i] = mat2c.NewCache(64)
	}
	results := make([]*fleet.UnitResult, len(units))
	for i := range units {
		res, err := fleet.Execute(context.Background(), &units[i], caches[i%nWorkers])
		if err != nil {
			t.Fatalf("execute unit %s: %v", units[i].ID, err)
		}
		results[i] = res
	}
	return results
}

func reportJSON(t *testing.T, rep interface{}) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardedDSEMatchesSingleProcess is the sharding property test:
// for randomized sweep axes, shard sizes, and worker counts, the
// sharded-and-merged report must be byte-for-byte identical to the
// single-process report (wall time excepted).
func TestShardedDSEMatchesSingleProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	ctx := context.Background()

	widthAxis := [][]int{{1}, {1, 4}, {1, 2, 4}}
	complexAxis := [][]bool{{false}, {true}, {true, false}}

	for trial := 0; trial < 3; trial++ {
		sweep := &dse.Sweep{
			Base:    "scalar",
			Widths:  widthAxis[rng.Intn(len(widthAxis))],
			Complex: complexAxis[rng.Intn(len(complexAxis))],
		}
		if trial == 2 {
			// One trial over a base with custom-instruction groups, so the
			// group axis crosses the wire too.
			sweep.Base = "dspasip"
			sweep.Groups = [][]string{nil, {"mac", "cmplx"}}
			sweep.Widths = []int{1, 4}
			sweep.Complex = []bool{true}
		}
		unitSize := 1 + rng.Intn(3)
		nWorkers := 2 + rng.Intn(2)
		opts := dse.Options{Jobs: 2, Scale: 0.05, Kernels: []string{"fir", "cfir"}}

		single, err := dse.ExploreContext(ctx, []*dse.Sweep{sweep}, opts)
		if err != nil {
			t.Fatalf("trial %d: single-process explore: %v", trial, err)
		}

		variants, bases, err := dse.EnumerateAll(ctx, []*dse.Sweep{sweep})
		if err != nil {
			t.Fatalf("trial %d: enumerate: %v", trial, err)
		}
		units, err := fleet.ShardDSE(variants, opts, unitSize)
		if err != nil {
			t.Fatalf("trial %d: shard: %v", trial, err)
		}
		if len(units) < 2 && len(variants) > 1 {
			t.Fatalf("trial %d: %d variants sharded into %d units", trial, len(variants), len(units))
		}
		merged, err := fleet.MergeDSE(bases, opts, len(variants), executeAcrossWorkers(t, units, nWorkers))
		if err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}

		single.ElapsedUS, merged.ElapsedUS = 0, 0
		got, want := reportJSON(t, merged), reportJSON(t, single)
		if !bytes.Equal(got, want) {
			t.Errorf("trial %d (base %s, unit size %d, %d workers): sharded report differs\nsharded: %s\nsingle:  %s",
				trial, sweep.Base, unitSize, nWorkers, got, want)
		}
	}
}

// TestShardedDSEDuplicateDeliveries exercises the at-least-once edge:
// delivering every unit result twice must merge to the same report
// (first write wins, and every write agrees).
func TestShardedDSEDuplicateDeliveries(t *testing.T) {
	ctx := context.Background()
	sweep := &dse.Sweep{Base: "scalar", Widths: []int{1, 4}, Complex: []bool{false}}
	opts := dse.Options{Jobs: 2, Scale: 0.05, Kernels: []string{"fir"}}

	variants, bases, err := dse.EnumerateAll(ctx, []*dse.Sweep{sweep})
	if err != nil {
		t.Fatal(err)
	}
	units, err := fleet.ShardDSE(variants, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := executeAcrossWorkers(t, units, 2)
	once, err := fleet.MergeDSE(bases, opts, len(variants), results)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := fleet.MergeDSE(bases, opts, len(variants), append(append([]*fleet.UnitResult{}, results...), results...))
	if err != nil {
		t.Fatal(err)
	}
	once.ElapsedUS, twice.ElapsedUS = 0, 0
	if !bytes.Equal(reportJSON(t, once), reportJSON(t, twice)) {
		t.Error("duplicate unit deliveries changed the merged report")
	}
}

// TestMergeDSERefusesPartialResults: a missing variant must fail the
// merge, never fabricate a partial report.
func TestMergeDSERefusesPartialResults(t *testing.T) {
	ctx := context.Background()
	sweep := &dse.Sweep{Base: "scalar", Widths: []int{1, 2}, Complex: []bool{false}}
	opts := dse.Options{Jobs: 1, Scale: 0.05, Kernels: []string{"fir"}}

	variants, bases, err := dse.EnumerateAll(ctx, []*dse.Sweep{sweep})
	if err != nil {
		t.Fatal(err)
	}
	units, err := fleet.ShardDSE(variants, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	results := executeAcrossWorkers(t, units, 1)
	if _, err := fleet.MergeDSE(bases, opts, len(variants), results[:len(results)-1]); err == nil {
		t.Fatal("merge accepted a missing variant")
	}
}

// TestShardedISXMatchesSingleProcess: planning on the coordinator plus
// per-candidate verification units must reproduce isx.MineContext
// byte for byte.
func TestShardedISXMatchesSingleProcess(t *testing.T) {
	ctx := context.Background()
	proc, err := mat2c.LoadProcessor("scalar")
	if err != nil {
		t.Fatal(err)
	}
	opts := isx.Options{Kernels: []string{"fir"}, Top: 2, Scale: 0.05}

	single, err := isx.MineContext(ctx, proc, opts)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := isx.PlanContext(ctx, proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Candidates) == 0 {
		t.Fatal("plan mined no candidates")
	}
	units, err := fleet.ShardISX(plan)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := fleet.MergeISX(plan, executeAcrossWorkers(t, units, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, merged), reportJSON(t, single)) {
		t.Errorf("sharded ISX report differs\nsharded: %s\nsingle:  %s",
			reportJSON(t, merged), reportJSON(t, single))
	}
}

// TestUnitIDsAreContentAddressed: identical work shards to identical
// unit IDs across calls (the idempotency anchor), and distinct work to
// distinct IDs.
func TestUnitIDsAreContentAddressed(t *testing.T) {
	ctx := context.Background()
	sweep := &dse.Sweep{Base: "scalar", Widths: []int{1, 2}, Complex: []bool{false}}
	opts := dse.Options{Scale: 0.05, Kernels: []string{"fir"}}

	variants, _, err := dse.EnumerateAll(ctx, []*dse.Sweep{sweep})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fleet.ShardDSE(variants, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fleet.ShardDSE(variants, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("unit %d: id changed across identical shardings: %s vs %s", i, a[i].ID, b[i].ID)
		}
		if seen[a[i].ID] {
			t.Errorf("unit %d: duplicate id %s for distinct work", i, a[i].ID)
		}
		seen[a[i].ID] = true
	}
}
