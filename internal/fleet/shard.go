// Sharding and merging: how a DSE sweep or an ISX mine becomes work
// units, and how per-shard partial results become the single report.
// Both directions reuse the single-process entry points
// (dse.EvalVariantContext / dse.Assemble, isx.VerifyCandidate /
// isx.Plan.Report), so the merged output is byte-identical to
// unsharded execution by construction.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"

	mat2c "mat2c"
	"mat2c/internal/dse"
	"mat2c/internal/isx"
	"mat2c/internal/pdesc"
)

// ShardDSE partitions enumerated variants into units of at most size
// variants each, preserving enumeration order within and across units.
func ShardDSE(variants []*dse.Variant, opts dse.Options, size int) ([]Unit, error) {
	if size <= 0 {
		size = 4
	}
	var units []Unit
	for start := 0; start < len(variants); start += size {
		end := start + size
		if end > len(variants) {
			end = len(variants)
		}
		du := &DSEUnit{Scale: opts.Scale, Kernels: opts.Kernels, EmitC: opts.EmitC}
		for i := start; i < end; i++ {
			v := variants[i]
			procJSON, err := json.Marshal(v.Proc)
			if err != nil {
				return nil, fmt.Errorf("fleet: marshal variant %s: %w", v.Proc.Name, err)
			}
			du.Variants = append(du.Variants, DSEVariant{
				Index:   i,
				Proc:    procJSON,
				Groups:  v.Groups,
				CostSet: v.CostSet,
			})
		}
		id, err := unitID(KindDSE, du)
		if err != nil {
			return nil, err
		}
		units = append(units, Unit{ID: id, Kind: KindDSE, DSE: du})
	}
	return units, nil
}

// MergeDSE places per-unit results back into enumeration order and
// assembles the report exactly as dse.ExploreContext would. Duplicate
// deliveries (at-least-once dispatch) merge first-write-wins — every
// delivery of a unit carries identical results, so the choice is
// immaterial. A missing variant is an error: the merge refuses to
// fabricate a partial report.
func MergeDSE(bases []string, opts dse.Options, total int, results []*UnitResult) (*dse.Report, error) {
	merged := make([]dse.VariantResult, total)
	got := make([]bool, total)
	for _, ur := range results {
		if ur == nil || ur.Kind != KindDSE {
			continue
		}
		for _, vr := range ur.DSE {
			if vr.Index < 0 || vr.Index >= total {
				return nil, fmt.Errorf("fleet: merge: variant index %d out of range [0,%d)", vr.Index, total)
			}
			if got[vr.Index] {
				continue
			}
			got[vr.Index] = true
			merged[vr.Index] = vr.Result
		}
	}
	for i, ok := range got {
		if !ok {
			return nil, fmt.Errorf("fleet: merge: variant %d of %d never completed", i, total)
		}
	}
	return dse.Assemble(bases, opts, merged)
}

// ShardISX builds one verification unit per planned candidate.
func ShardISX(plan *isx.Plan) ([]Unit, error) {
	procJSON, err := json.Marshal(plan.Proc)
	if err != nil {
		return nil, fmt.Errorf("fleet: marshal processor %s: %w", plan.Proc.Name, err)
	}
	var units []Unit
	for i, c := range plan.Candidates {
		iu := &ISXUnit{Index: i, Proc: procJSON, Candidate: c, Profiles: plan.Profiles}
		id, err := unitID(KindISX, iu)
		if err != nil {
			return nil, err
		}
		units = append(units, Unit{ID: id, Kind: KindISX, ISX: iu})
	}
	return units, nil
}

// MergeISX attaches the verification deltas to the planned candidates
// (first write wins, as with MergeDSE) and assembles the report.
func MergeISX(plan *isx.Plan, results []*UnitResult) (*isx.Report, error) {
	got := make([]bool, len(plan.Candidates))
	for _, ur := range results {
		if ur == nil || ur.Kind != KindISX || ur.ISX == nil {
			continue
		}
		i := ur.ISX.Index
		if i < 0 || i >= len(plan.Candidates) {
			return nil, fmt.Errorf("fleet: merge: candidate index %d out of range [0,%d)", i, len(plan.Candidates))
		}
		if got[i] {
			continue
		}
		got[i] = true
		plan.Candidates[i].Deltas = ur.ISX.Deltas
	}
	for i, ok := range got {
		if !ok {
			return nil, fmt.Errorf("fleet: merge: candidate %d of %d never verified", i, len(plan.Candidates))
		}
	}
	return plan.Report(), nil
}

// Execute runs one unit locally — the worker side of the protocol.
// Variant evaluation flows through cache (the worker's shared
// compilation cache), which is what makes at-least-once re-dispatch
// cheap: a re-executed unit hits the content-addressed keys its first
// execution populated.
func Execute(ctx context.Context, u *Unit, cache *mat2c.Cache) (*UnitResult, error) {
	switch u.Kind {
	case KindDSE:
		if u.DSE == nil {
			return nil, fmt.Errorf("fleet: %s unit without a dse payload", u.ID)
		}
		opts := dse.Options{
			Jobs:    1, // parallelism comes from units in flight, not within a unit
			Scale:   u.DSE.Scale,
			Kernels: u.DSE.Kernels,
			EmitC:   u.DSE.EmitC,
			Cache:   cache,
		}
		res := &UnitResult{ID: u.ID, Kind: KindDSE}
		for _, wv := range u.DSE.Variants {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			proc, err := pdesc.Parse(wv.Proc)
			if err != nil {
				return nil, fmt.Errorf("fleet: unit %s variant %d: %w", u.ID, wv.Index, err)
			}
			v := &dse.Variant{Proc: proc, Groups: wv.Groups, CostSet: wv.CostSet}
			vr, err := dse.EvalVariantContext(ctx, v, opts)
			if err != nil {
				return nil, fmt.Errorf("fleet: unit %s variant %d: %w", u.ID, wv.Index, err)
			}
			res.DSE = append(res.DSE, DSEVariantResult{Index: wv.Index, Result: vr})
		}
		return res, nil
	case KindISX:
		if u.ISX == nil || u.ISX.Candidate == nil {
			return nil, fmt.Errorf("fleet: %s unit without an isx payload", u.ID)
		}
		proc, err := pdesc.Parse(u.ISX.Proc)
		if err != nil {
			return nil, fmt.Errorf("fleet: unit %s: %w", u.ID, err)
		}
		deltas := isx.VerifyCandidate(ctx, proc, u.ISX.Candidate, u.ISX.Profiles)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &UnitResult{
			ID:   u.ID,
			Kind: KindISX,
			ISX:  &ISXUnitResult{Index: u.ISX.Index, Deltas: deltas},
		}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown unit kind %q", u.Kind)
	}
}
