package fleet_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	mat2c "mat2c"
	"mat2c/internal/dse"
	"mat2c/internal/fleet"
)

// testWorker is an httptest-backed fleet worker: a real unit executor
// behind /fleet/unit, with optional fault injection.
type testWorker struct {
	ts    *httptest.Server
	cache *mat2c.Cache
	// served counts unit requests handled (including injected faults).
	served atomic.Int32
	// abortAfter, when > 0, aborts every request past the first N with
	// a connection reset — a worker crashing mid-sweep.
	abortAfter int32
	// shedFirst, when > 0, sheds the first N requests with 503 +
	// Retry-After: 0.
	shedFirst int32
}

func newTestWorker(t *testing.T) *testWorker {
	t.Helper()
	w := &testWorker{cache: mat2c.NewCache(64)}
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/fleet/unit" {
			http.NotFound(rw, r)
			return
		}
		n := w.served.Add(1)
		if w.abortAfter > 0 && n > w.abortAfter {
			panic(http.ErrAbortHandler)
		}
		if n <= w.shedFirst {
			rw.Header().Set("Retry-After", "0")
			http.Error(rw, "sweep queue full", http.StatusServiceUnavailable)
			return
		}
		var u fleet.Unit
		if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := fleet.Execute(r.Context(), &u, w.cache)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		json.NewEncoder(rw).Encode(res)
	}))
	t.Cleanup(w.ts.Close)
	return w
}

func fastConfig() fleet.Config {
	return fleet.Config{
		Window:          2,
		UnitSize:        1,
		RetryBase:       5 * time.Millisecond,
		RetryMax:        50 * time.Millisecond,
		NoWorkerTimeout: 5 * time.Second,
	}
}

func smokeUnits(t *testing.T) ([]fleet.Unit, []string, []*dse.Variant, dse.Options) {
	t.Helper()
	sweep := &dse.Sweep{Base: "scalar", Widths: []int{1, 2, 4}, Complex: []bool{true, false}}
	opts := dse.Options{Jobs: 2, Scale: 0.05, Kernels: []string{"fir"}}
	variants, bases, err := dse.EnumerateAll(context.Background(), []*dse.Sweep{sweep})
	if err != nil {
		t.Fatal(err)
	}
	units, err := fleet.ShardDSE(variants, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	return units, bases, variants, opts
}

// TestRunUnitsWorkerLossRedispatch kills one of two workers mid-sweep
// (it aborts every connection after its first served unit) and
// verifies re-dispatch drives the run to completion with results
// identical to a single-process run. This is the test the CI race job
// runs with -race.
func TestRunUnitsWorkerLossRedispatch(t *testing.T) {
	units, bases, variants, opts := smokeUnits(t)

	dying := newTestWorker(t)
	dying.abortAfter = 1
	healthy := newTestWorker(t)

	c := fleet.NewCoordinator(fastConfig())
	c.Register(dying.ts.URL, 1)
	c.Register(healthy.ts.URL, 1)

	var delivered atomic.Int32
	results, err := c.RunUnits(context.Background(), units, func(*fleet.UnitResult) {
		delivered.Add(1)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if int(delivered.Load()) != len(units) {
		t.Errorf("onResult fired %d times, want %d", delivered.Load(), len(units))
	}

	merged, err := fleet.MergeDSE(bases, opts, len(variants), results)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	single, err := dse.ExploreContext(context.Background(), []*dse.Sweep{{
		Base: "scalar", Widths: []int{1, 2, 4}, Complex: []bool{true, false},
	}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	single.ElapsedUS, merged.ElapsedUS = 0, 0
	got, want := reportJSON(t, merged), reportJSON(t, single)
	if string(got) != string(want) {
		t.Errorf("post-redispatch report differs\nfleet:  %s\nsingle: %s", got, want)
	}

	st := c.Status()
	if st.UnitsRetried == 0 {
		t.Error("worker death produced no retries")
	}
	if st.Alive != 1 {
		t.Errorf("workers alive = %d, want 1 (the dead one marked lost)", st.Alive)
	}
	if st.InflightRPCs != 0 {
		t.Errorf("inflight RPCs = %d after run, want 0", st.InflightRPCs)
	}
}

// TestRunUnitsBackpressureShed: a worker shedding with 503 +
// Retry-After is retried without burning failure attempts, and the
// sheds are counted.
func TestRunUnitsBackpressureShed(t *testing.T) {
	units, _, _, _ := smokeUnits(t)

	w := newTestWorker(t)
	w.shedFirst = 3

	cfg := fastConfig()
	cfg.MaxAttempts = 2 // sheds must not count against this
	c := fleet.NewCoordinator(cfg)
	c.Register(w.ts.URL, 1)

	results, err := c.RunUnits(context.Background(), units, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("unit %d has no result", i)
		}
	}
	if st := c.Status(); st.UnitsShed < 3 {
		t.Errorf("units_shed = %d, want >= 3", st.UnitsShed)
	}
}

// TestRunUnitsNoWorkerFailsTheRun: with nobody registered the run
// fails after NoWorkerTimeout instead of hanging.
func TestRunUnitsNoWorkerFailsTheRun(t *testing.T) {
	units, _, _, _ := smokeUnits(t)
	cfg := fastConfig()
	cfg.NoWorkerTimeout = 50 * time.Millisecond
	c := fleet.NewCoordinator(cfg)

	_, err := c.RunUnits(context.Background(), units[:1], nil)
	if err == nil || !strings.Contains(err.Error(), "no live worker") {
		t.Fatalf("err = %v, want a no-live-worker failure", err)
	}
}

// TestRunUnitsPermanentRejectFailsFast: a 4xx from a worker marks the
// unit bad and fails the run without retries.
func TestRunUnitsPermanentRejectFailsFast(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad unit", http.StatusUnprocessableEntity)
	}))
	defer ts.Close()

	units, _, _, _ := smokeUnits(t)
	c := fleet.NewCoordinator(fastConfig())
	c.Register(ts.URL, 1)

	_, err := c.RunUnits(context.Background(), units[:1], nil)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("err = %v, want a rejection failure", err)
	}
	if st := c.Status(); st.UnitsRetried != 0 {
		t.Errorf("permanent reject retried %d times, want 0", st.UnitsRetried)
	}
}

// TestRegisterHeartbeatDeregister covers the registry lifecycle:
// registration, heartbeat refresh (same id), deregistration, revival.
func TestRegisterHeartbeatDeregister(t *testing.T) {
	c := fleet.NewCoordinator(fleet.Config{})

	id1 := c.Register("http://w1", 2)
	id2 := c.Register("http://w2", 2)
	if id1 == id2 {
		t.Fatalf("two workers share id %s", id1)
	}
	if again := c.Register("http://w1", 2); again != id1 {
		t.Errorf("heartbeat re-register changed id: %s -> %s", id1, again)
	}
	if st := c.Status(); st.Alive != 2 {
		t.Fatalf("alive = %d, want 2", st.Alive)
	}

	if !c.Deregister("http://w1") {
		t.Fatal("deregister of a known worker reported unknown")
	}
	if c.Deregister("http://nosuch") {
		t.Error("deregister of an unknown worker reported known")
	}
	if st := c.Status(); st.Alive != 1 {
		t.Fatalf("alive = %d after deregister, want 1", st.Alive)
	}

	// Re-registration revives a drained worker under its old id.
	if revived := c.Register("http://w1", 2); revived != id1 {
		t.Errorf("revival changed id: %s -> %s", id1, revived)
	}
	if st := c.Status(); st.Alive != 2 {
		t.Fatalf("alive = %d after revival, want 2", st.Alive)
	}
}

// TestAgentRegistersAndDeregisters drives the worker-side agent
// against a live coordinator.
func TestAgentRegistersAndDeregisters(t *testing.T) {
	c := fleet.NewCoordinator(fleet.Config{})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) {
		var req fleet.RegisterRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(fleet.RegisterReply{ID: c.Register(req.URL, req.Slots)})
	})
	mux.HandleFunc("POST /fleet/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req fleet.RegisterRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(map[string]bool{"deregistered": c.Deregister(req.URL)})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	a := &fleet.Agent{Coordinator: ts.URL, Self: "http://worker:1", Slots: 3, Interval: 10 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); a.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for c.Status().Alive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("agent never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not stop")
	}
	if st := c.Status(); st.Alive != 0 {
		t.Fatalf("alive = %d after agent shutdown, want 0 (deregistered)", st.Alive)
	}
}

// TestAgentDeregisterBoundedByShutdownBudget: an injected client with a
// huge timeout plus a coordinator that sits on the deregister call must
// not stall agent shutdown — the deregister attempt is clamped to its
// own 2s budget.
func TestAgentDeregisterBoundedByShutdownBudget(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/register", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(fleet.RegisterReply{ID: "w1"})
	})
	mux.HandleFunc("POST /fleet/deregister", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server watches the connection and
		// cancels r.Context when the agent gives up; the timer is a
		// backstop so a missed disconnect cannot hang ts.Close.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(20 * time.Second):
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	a := &fleet.Agent{
		Coordinator: ts.URL,
		Self:        "http://worker:1",
		Interval:    10 * time.Millisecond,
		Client:      &http.Client{Timeout: time.Hour},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); a.Run(ctx) }()
	time.Sleep(50 * time.Millisecond) // let it register
	start := time.Now()
	cancel()
	select {
	case <-done:
		if d := time.Since(start); d > 4*time.Second {
			t.Errorf("shutdown took %s, want ~2s deregister budget", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent shutdown stalled on the hanging deregister call")
	}
}
