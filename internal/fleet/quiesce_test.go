package fleet

import (
	"context"
	"testing"
	"time"
)

// TestQuiesceWaitsForInflight: quiesce returns once the in-flight
// gauge drains.
func TestQuiesceWaitsForInflight(t *testing.T) {
	c := NewCoordinator(Config{})
	c.mu.Lock()
	c.inflight = 1
	c.mu.Unlock()

	go func() {
		time.Sleep(20 * time.Millisecond)
		c.mu.Lock()
		c.inflight = 0
		c.mu.Unlock()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if n := c.Quiesce(ctx); n != 0 {
		t.Fatalf("quiesce abandoned %d units, want 0", n)
	}
	if st := c.Status(); st.UnitsAbandoned != 0 {
		t.Fatalf("units_abandoned = %d, want 0", st.UnitsAbandoned)
	}
}

// TestQuiesceRecordsAbandoned: a grace period expiring with RPCs still
// out records them as abandoned instead of dropping them silently.
func TestQuiesceRecordsAbandoned(t *testing.T) {
	c := NewCoordinator(Config{})
	c.mu.Lock()
	c.inflight = 2
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if n := c.Quiesce(ctx); n != 2 {
		t.Fatalf("quiesce reported %d abandoned units, want 2", n)
	}
	if st := c.Status(); st.UnitsAbandoned != 2 {
		t.Fatalf("units_abandoned = %d, want 2", st.UnitsAbandoned)
	}
}

// TestBackoffBoundsAndJitter: delays grow exponentially, stay within
// the jitter envelope, and cap at RetryMax.
func TestBackoffBoundsAndJitter(t *testing.T) {
	c := NewCoordinator(Config{RetryBase: 100 * time.Millisecond, RetryMax: 5 * time.Second})
	for attempt := 0; attempt < 12; attempt++ {
		base := 100 * time.Millisecond << uint(attempt)
		if base > 5*time.Second || base <= 0 {
			base = 5 * time.Second
		}
		for i := 0; i < 20; i++ {
			d := c.backoff(attempt)
			if d < base/2 || d >= base*3/2 {
				t.Fatalf("backoff(%d) = %v outside [%v, %v)", attempt, d, base/2, base*3/2)
			}
		}
	}
}
