// Package fleet implements the coordinator/worker split that scales
// design-space exploration and instruction-set-extension mining beyond
// one mat2cd process. Sweeps are embarrassingly parallel — every
// variant is an independent compile+simulate keyed by content hash —
// so a coordinator partitions a job into content-hash-keyed work
// units, dispatches them over HTTP to registered workers, and merges
// the per-shard partial results into a report byte-identical to
// single-process execution of the same specification.
//
// Reliability model: dispatch is at-least-once. A unit whose worker
// dies (or whose reply is lost) is re-dispatched to another worker;
// because every unit is a pure function of its content-addressed
// payload — variant evaluation flows through the same content-keyed
// compilation cache as single-process sweeps — re-execution returns
// identical results and duplicate deliveries merge idempotently
// (first write wins, and every write agrees). Per-worker in-flight
// windows bound the blast radius of a slow worker; retries back off
// exponentially with jitter; workers shed sweep units with 503 +
// Retry-After when their bounded sweep queue is full, so sweep
// traffic can never saturate a worker's interactive /run slots.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mat2c/internal/dse"
	"mat2c/internal/isx"
)

// Unit kinds.
const (
	KindDSE = "dse" // a batch of design-space-exploration variants
	KindISX = "isx" // one instruction-set-extension candidate to verify
)

// Unit is one idempotent work unit. ID is a content hash of the
// payload, so re-dispatch after a worker loss re-executes the same
// work and lands on the same compilation-cache keys.
type Unit struct {
	ID   string   `json:"id"`
	Kind string   `json:"kind"`
	DSE  *DSEUnit `json:"dse,omitempty"`
	ISX  *ISXUnit `json:"isx,omitempty"`
}

// DSEUnit is a batch of sweep variants to evaluate. Scale, Kernels,
// and EmitC mirror dse.Options (zero values select the same defaults
// the single-process engine applies).
type DSEUnit struct {
	Scale    float64      `json:"scale,omitempty"`
	Kernels  []string     `json:"kernels,omitempty"`
	EmitC    bool         `json:"emit_c,omitempty"`
	Variants []DSEVariant `json:"variants"`
}

// DSEVariant is one enumerated variant on the wire: the full derived
// processor description plus the sweep coordinates the report echoes.
// Index is the variant's position in the merged report (enumeration
// order), which is what makes merging order-identical to a
// single-process run.
type DSEVariant struct {
	Index   int             `json:"index"`
	Proc    json.RawMessage `json:"proc"`
	Groups  []string        `json:"groups,omitempty"`
	CostSet string          `json:"cost_set,omitempty"`
}

// ISXUnit is one mined-candidate verification: recompile and
// re-simulate every profiled kernel on the base processor extended
// with the candidate. Index addresses the candidate in the
// coordinator's plan.
type ISXUnit struct {
	Index     int                  `json:"index"`
	Proc      json.RawMessage      `json:"proc"`
	Candidate *isx.Candidate       `json:"candidate"`
	Profiles  []isx.ProfileSummary `json:"profiles,omitempty"`
}

// UnitResult is a worker's reply to one executed unit.
type UnitResult struct {
	ID   string             `json:"id"`
	Kind string             `json:"kind"`
	DSE  []DSEVariantResult `json:"dse,omitempty"`
	ISX  *ISXUnitResult     `json:"isx,omitempty"`
}

// DSEVariantResult is one evaluated variant, addressed back into the
// merged report by Index.
type DSEVariantResult struct {
	Index  int               `json:"index"`
	Result dse.VariantResult `json:"result"`
}

// ISXUnitResult carries one candidate's verification deltas.
type ISXUnitResult struct {
	Index  int               `json:"index"`
	Deltas []isx.KernelDelta `json:"deltas,omitempty"`
}

// RegisterRequest is the POST /fleet/register body a worker sends the
// coordinator (initially and as a heartbeat).
type RegisterRequest struct {
	// URL is the worker's advertised base URL (http://host:port).
	URL string `json:"url"`
	// Slots is the worker's sweep-unit execution bound (informational;
	// the worker enforces it itself by shedding with 503).
	Slots int `json:"slots,omitempty"`
}

// RegisterReply acknowledges a registration with the assigned worker
// id and, when the coordinator serves the fleet-shared artifact cache,
// the cache endpoint. ArtifactURL may be path-relative ("/artifact"),
// in which case the worker resolves it against the coordinator base
// URL it registered with — the coordinator need not know its own
// externally-visible address.
type RegisterReply struct {
	ID string `json:"id"`
	// ArtifactURL is the blob-protocol endpoint of the fleet's shared
	// artifact store (empty when the coordinator does not serve one).
	ArtifactURL string `json:"artifact_url,omitempty"`
}

// WorkerInfo is one GET /fleet worker entry.
type WorkerInfo struct {
	ID        string  `json:"id"`
	URL       string  `json:"url"`
	Alive     bool    `json:"alive"`
	LastSeenS float64 `json:"last_seen_seconds"`
	Inflight  int     `json:"inflight"`
	Slots     int     `json:"slots,omitempty"`
	Completed uint64  `json:"units_completed"`
	Failed    uint64  `json:"units_failed"`
}

// Status is the GET /fleet coordinator snapshot: worker health plus
// dispatch counters.
type Status struct {
	Workers         []WorkerInfo `json:"workers"`
	Alive           int          `json:"workers_alive"`
	UnitsDispatched uint64       `json:"units_dispatched"`
	UnitsCompleted  uint64       `json:"units_completed"`
	UnitsRetried    uint64       `json:"units_retried"`
	UnitsShed       uint64       `json:"units_shed"`
	UnitsAbandoned  uint64       `json:"units_abandoned"`
	InflightRPCs    int          `json:"inflight_rpcs"`
}

// unitID content-addresses a unit payload: two units carrying the same
// work share an ID across retries, runs, and coordinators.
func unitID(kind string, payload interface{}) (string, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("fleet: hash unit: %w", err)
	}
	sum := sha256.Sum256(data)
	return kind + "-" + hex.EncodeToString(sum[:8]), nil
}
