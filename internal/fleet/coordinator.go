// The coordinator: a worker registry plus a dispatching engine that
// drives a set of work units to completion across the fleet.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"mat2c/internal/dse"
	"mat2c/internal/isx"
	"mat2c/internal/pdesc"
)

// Config tunes the coordinator. Zero values select defaults.
type Config struct {
	// Window bounds in-flight units per worker (default 2): a slow
	// worker can hold up at most Window units while the rest of the
	// fleet keeps draining the queue.
	Window int
	// UnitSize bounds variants per DSE unit (default 4).
	UnitSize int
	// MaxAttempts bounds failed dispatch attempts per unit before the
	// whole run fails (default 8). Backpressure sheds (503) do not
	// count: a busy fleet is not a broken one.
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential backoff between a
	// unit's attempts (defaults 100ms / 5s); each delay is jittered
	// uniformly in [0.5x, 1.5x].
	RetryBase time.Duration
	RetryMax  time.Duration
	// HeartbeatTimeout is how long after its last registration a
	// worker is still dispatched to (default 15s).
	HeartbeatTimeout time.Duration
	// NoWorkerTimeout fails a run that has had no live worker to
	// dispatch to for this long (default 60s): a fleet with no workers
	// queues briefly — workers may still be registering — but does not
	// hang jobs forever.
	NoWorkerTimeout time.Duration
	// UnitTimeout bounds one dispatch RPC (default 5m).
	UnitTimeout time.Duration
	// Client issues the dispatch RPCs (default http.DefaultClient
	// semantics; per-RPC contexts bound every call).
	Client *http.Client
	// Logf, when set, receives dispatch diagnostics (worker loss,
	// retries).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 2
	}
	if c.UnitSize <= 0 {
		c.UnitSize = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 15 * time.Second
	}
	if c.NoWorkerTimeout <= 0 {
		c.NoWorkerTimeout = 60 * time.Second
	}
	if c.UnitTimeout <= 0 {
		c.UnitTimeout = 5 * time.Minute
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// worker is one registered fleet member.
type worker struct {
	id        string
	url       string
	slots     int
	lastSeen  time.Time
	gone      bool // deregistered, or lost to a transport error
	inflight  int
	completed uint64
	failed    uint64
}

// Coordinator owns the worker registry and dispatches work units. All
// methods are safe for concurrent use.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	seq     int
	workers map[string]*worker // by id
	byURL   map[string]*worker

	dispatched uint64
	completed  uint64
	retried    uint64
	shed       uint64
	abandoned  uint64
	inflight   int // dispatched-but-unacked unit RPCs
}

// NewCoordinator builds a coordinator with the given configuration.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		workers: map[string]*worker{},
		byURL:   map[string]*worker{},
	}
}

// Register adds (or refreshes — registration doubles as the heartbeat)
// a worker by its advertised URL and returns its id. Re-registering a
// URL that was lost revives it.
func (c *Coordinator) Register(url string, slots int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.byURL[url]; w != nil {
		w.lastSeen = time.Now()
		w.gone = false
		if slots > 0 {
			w.slots = slots
		}
		return w.id
	}
	c.seq++
	w := &worker{
		id:       fmt.Sprintf("w%d", c.seq),
		url:      url,
		slots:    slots,
		lastSeen: time.Now(),
	}
	c.workers[w.id] = w
	c.byURL[url] = w
	c.cfg.Logf("fleet: worker %s registered at %s", w.id, url)
	return w.id
}

// Deregister removes a worker (by URL) from dispatch; a drain-aware
// worker calls this on shutdown so no further units land on it.
func (c *Coordinator) Deregister(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.byURL[url]
	if w == nil {
		return false
	}
	w.gone = true
	c.cfg.Logf("fleet: worker %s at %s deregistered", w.id, url)
	return true
}

// Status snapshots worker health and dispatch counters for GET /fleet
// and /metrics.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		UnitsDispatched: c.dispatched,
		UnitsCompleted:  c.completed,
		UnitsRetried:    c.retried,
		UnitsShed:       c.shed,
		UnitsAbandoned:  c.abandoned,
		InflightRPCs:    c.inflight,
	}
	now := time.Now()
	for _, w := range c.workers {
		alive := !w.gone && now.Sub(w.lastSeen) < c.cfg.HeartbeatTimeout
		if alive {
			st.Alive++
		}
		st.Workers = append(st.Workers, WorkerInfo{
			ID:        w.id,
			URL:       w.url,
			Alive:     alive,
			LastSeenS: now.Sub(w.lastSeen).Seconds(),
			Inflight:  w.inflight,
			Slots:     w.slots,
			Completed: w.completed,
			Failed:    w.failed,
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}

// UnitSize exposes the configured DSE shard size.
func (c *Coordinator) UnitSize() int { return c.cfg.UnitSize }

// pickWorker chooses the least-loaded live worker with window room, or
// nil when none is eligible. Caller-side accounting: the chosen
// worker's inflight is already incremented on return.
func (c *Coordinator) pickWorker() *worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var best *worker
	for _, w := range c.workers {
		if w.gone || now.Sub(w.lastSeen) >= c.cfg.HeartbeatTimeout {
			continue
		}
		if w.inflight >= c.cfg.Window {
			continue
		}
		if best == nil || w.inflight < best.inflight ||
			(w.inflight == best.inflight && w.id < best.id) {
			best = w
		}
	}
	if best != nil {
		best.inflight++
		c.dispatched++
		c.inflight++
	}
	return best
}

// release undoes pickWorker's accounting once the RPC settles.
func (c *Coordinator) release(w *worker, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.inflight--
	c.inflight--
	if ok {
		w.completed++
		c.completed++
	} else {
		w.failed++
	}
}

// markLost drops a worker from dispatch after a transport error; a
// later heartbeat revives it.
func (c *Coordinator) markLost(w *worker, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !w.gone {
		w.gone = true
		c.cfg.Logf("fleet: worker %s at %s lost: %v", w.id, w.url, err)
	}
}

// Quiesce blocks until every dispatched-but-unacked unit RPC has
// settled, or ctx expires — in which case the stragglers are recorded
// as abandoned and their count returned. Shutdown paths call this
// after cancelling the runs' contexts, so cancelled RPCs return
// promptly and an abandoned unit means a worker that would not let go
// within the grace period.
func (c *Coordinator) Quiesce(ctx context.Context) int {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		n := c.inflight
		c.mu.Unlock()
		if n == 0 {
			return 0
		}
		select {
		case <-ctx.Done():
			c.mu.Lock()
			n = c.inflight
			c.abandoned += uint64(n)
			c.mu.Unlock()
			if n > 0 {
				c.cfg.Logf("fleet: shutdown abandoned %d dispatched unit(s)", n)
			}
			return n
		case <-tick.C:
		}
	}
}

// sendOutcome classifies one dispatch attempt.
type sendOutcome struct {
	res        *UnitResult
	err        error
	permanent  bool          // 4xx other than 503/429: the unit itself is bad
	shed       bool          // 503/429 backpressure: retry without penalty
	retryAfter time.Duration // server-suggested delay on shed
}

// send dispatches one unit to one worker and classifies the reply.
func (c *Coordinator) send(ctx context.Context, w *worker, u *Unit) sendOutcome {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.UnitTimeout)
	defer cancel()
	body, err := json.Marshal(u)
	if err != nil {
		return sendOutcome{err: err, permanent: true}
	}
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, w.url+"/fleet/unit", bytes.NewReader(body))
	if err != nil {
		return sendOutcome{err: err, permanent: true}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return sendOutcome{err: err}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var res UnitResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return sendOutcome{err: fmt.Errorf("decode unit reply: %w", err)}
		}
		if res.ID != u.ID {
			return sendOutcome{err: fmt.Errorf("unit reply id %q does not match %q", res.ID, u.ID)}
		}
		return sendOutcome{res: &res}
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
		delay := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				delay = time.Duration(secs) * time.Second
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return sendOutcome{shed: true, retryAfter: delay,
			err: fmt.Errorf("worker %s shed unit (status %d)", w.id, resp.StatusCode)}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		err := fmt.Errorf("worker %s: status %d: %s", w.id, resp.StatusCode, bytes.TrimSpace(msg))
		return sendOutcome{err: err, permanent: resp.StatusCode >= 400 && resp.StatusCode < 500}
	}
}

// backoff returns the jittered exponential delay before retry n (0-based).
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	// Uniform jitter in [0.5x, 1.5x) de-synchronizes retry storms.
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// RunUnits drives units to completion across the registered workers:
// bounded per-worker in-flight windows, at-least-once dispatch with
// exponential backoff + jitter, re-dispatch on worker loss, and
// backpressure-aware retries on 503 sheds. onResult, when set, is
// called once per completed unit as results arrive (from dispatch
// goroutines; must be safe for concurrent use). Cancelling ctx stops
// dispatching and cancels in-flight RPCs; workers observe the
// cancellation through their request contexts.
func (c *Coordinator) RunUnits(ctx context.Context, units []Unit, onResult func(*UnitResult)) ([]*UnitResult, error) {
	if len(units) == 0 {
		return nil, nil
	}
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()

	type attempt struct {
		idx       int
		tries     int // failed attempts so far (sheds excluded)
		notBefore time.Time
	}
	// Each unit has exactly one live attempt (queued, sleeping, or in
	// flight), so the queue never exceeds len(units).
	queue := make(chan attempt, len(units))
	for i := range units {
		queue <- attempt{idx: i}
	}

	var (
		mu        sync.Mutex
		results   = make([]*UnitResult, len(units))
		remaining = len(units)
		runErr    error
	)
	finishErr := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		rcancel()
	}
	// requeue re-enqueues an attempt after its delay without blocking
	// the dispatch loop.
	requeue := func(at attempt) {
		delay := time.Until(at.notBefore)
		if delay <= 0 {
			select {
			case queue <- at:
			case <-rctx.Done():
			}
			return
		}
		go func() {
			// A stoppable timer, not time.After: backoff delays reach
			// RetryMax (seconds), and a run that finishes early would
			// otherwise leave one unreclaimable timer per sleeping
			// retry until it fired.
			tm := time.NewTimer(delay)
			defer tm.Stop()
			select {
			case <-tm.C:
				select {
				case queue <- at:
				case <-rctx.Done():
				}
			case <-rctx.Done():
			}
		}()
	}

	noWorkerSince := time.Time{}
	for {
		var at attempt
		select {
		case <-rctx.Done():
			mu.Lock()
			err := runErr
			rem := remaining
			mu.Unlock()
			if err == nil && rem > 0 {
				err = fmt.Errorf("fleet: run cancelled with %d of %d units outstanding: %w",
					rem, len(units), ctx.Err())
			}
			return results, err
		case at = <-queue:
		}
		if wait := time.Until(at.notBefore); wait > 0 {
			requeue(at)
			continue
		}
		w := c.pickWorker()
		if w == nil {
			if noWorkerSince.IsZero() {
				noWorkerSince = time.Now()
			} else if time.Since(noWorkerSince) > c.cfg.NoWorkerTimeout {
				mu.Lock()
				rem := remaining
				mu.Unlock()
				finishErr(fmt.Errorf("fleet: no live worker for %s (%d of %d units outstanding)",
					c.cfg.NoWorkerTimeout, rem, len(units)))
				continue
			}
			at.notBefore = time.Now().Add(20 * time.Millisecond)
			requeue(at)
			continue
		}
		noWorkerSince = time.Time{}
		go func(at attempt, w *worker) {
			out := c.send(rctx, w, &units[at.idx])
			c.release(w, out.err == nil)
			switch {
			case out.err == nil:
				mu.Lock()
				first := results[at.idx] == nil
				if first {
					results[at.idx] = out.res
					remaining--
				}
				rem := remaining
				mu.Unlock()
				if first && onResult != nil {
					onResult(out.res)
				}
				if rem == 0 {
					rcancel()
				}
			case rctx.Err() != nil:
				// The run is over (cancelled or already failed); the
				// aborted RPC needs no retry bookkeeping.
			case out.shed:
				c.mu.Lock()
				c.shed++
				c.mu.Unlock()
				at.notBefore = time.Now().Add(out.retryAfter)
				requeue(at)
			case out.permanent:
				finishErr(fmt.Errorf("fleet: unit %s rejected: %w", units[at.idx].ID, out.err))
			default:
				c.markLost(w, out.err)
				at.tries++
				if at.tries >= c.cfg.MaxAttempts {
					finishErr(fmt.Errorf("fleet: unit %s failed after %d attempts: %w",
						units[at.idx].ID, at.tries, out.err))
					return
				}
				c.mu.Lock()
				c.retried++
				c.mu.Unlock()
				c.cfg.Logf("fleet: retrying unit %s (attempt %d): %v", units[at.idx].ID, at.tries+1, out.err)
				at.notBefore = time.Now().Add(c.backoff(at.tries - 1))
				requeue(at)
			}
		}(at, w)
	}
}

// ExploreDSE runs a sharded design-space exploration: enumerate on the
// coordinator, shard into content-keyed units, dispatch across the
// fleet, and merge — producing a report byte-identical to
// dse.ExploreContext on the same specification (ElapsedUS excepted;
// it is wall time). opts.OnVariant fires per evaluated variant as unit
// results arrive.
func (c *Coordinator) ExploreDSE(ctx context.Context, sweeps []*dse.Sweep, opts dse.Options) (*dse.Report, error) {
	begin := time.Now()
	variants, bases, err := dse.EnumerateAll(ctx, sweeps)
	if err != nil {
		return nil, err
	}
	units, err := ShardDSE(variants, opts, c.cfg.UnitSize)
	if err != nil {
		return nil, err
	}
	var onResult func(*UnitResult)
	if opts.OnVariant != nil {
		onResult = func(ur *UnitResult) {
			for _, vr := range ur.DSE {
				opts.OnVariant(vr.Result)
			}
		}
	}
	results, err := c.RunUnits(ctx, units, onResult)
	if err != nil {
		return nil, err
	}
	rep, err := MergeDSE(bases, opts, len(variants), results)
	if err != nil {
		return nil, err
	}
	rep.ElapsedUS = time.Since(begin).Microseconds()
	return rep, nil
}

// MineISX runs a sharded instruction-set-extension mine: plan
// (profile + enumerate + rank) on the coordinator, then dispatch one
// verification unit per candidate and merge the measured deltas —
// byte-identical to isx.MineContext on the same options.
func (c *Coordinator) MineISX(ctx context.Context, proc *pdesc.Processor, opts isx.Options) (*isx.Report, error) {
	plan, err := isx.PlanContext(ctx, proc, opts)
	if err != nil {
		return nil, err
	}
	if opts.NoVerify || len(plan.Candidates) == 0 {
		return plan.Report(), nil
	}
	units, err := ShardISX(plan)
	if err != nil {
		return nil, err
	}
	results, err := c.RunUnits(ctx, units, nil)
	if err != nil {
		return nil, err
	}
	return MergeISX(plan, results)
}
