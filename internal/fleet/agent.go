// The worker-side registration agent: keeps a worker enrolled with its
// coordinator for as long as it runs, and deregisters on shutdown so
// the coordinator stops dispatching to a draining worker.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Agent enrolls one worker with one coordinator. Registration doubles
// as the heartbeat: the agent re-registers every Interval, and the
// coordinator treats a worker silent past its heartbeat timeout as
// lost.
type Agent struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Self is this worker's advertised base URL, where the coordinator
	// sends POST /fleet/unit.
	Self string
	// Slots is the worker's sweep-unit execution bound (informational).
	Slots int
	// Interval between heartbeats (default 3s; keep it well under the
	// coordinator's HeartbeatTimeout).
	Interval time.Duration
	// Client issues the registration calls (default: a 5s-timeout client).
	Client *http.Client
	// Logf, when set, receives registration diagnostics.
	Logf func(format string, args ...interface{})
	// OnArtifactURL, when set, is called once — on the first successful
	// registration whose reply advertises a shared artifact cache —
	// with the endpoint resolved to an absolute URL. Workers use it to
	// attach the fleet-shared remote cache tier.
	OnArtifactURL func(url string)

	artifactSeen bool
}

func (a *Agent) logf(format string, args ...interface{}) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

func (a *Agent) client() *http.Client {
	if a.Client != nil {
		return a.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// RegisterOnce performs one registration round-trip and returns the
// coordinator-assigned worker id. When the reply advertises a shared
// artifact cache for the first time, the OnArtifactURL hook fires with
// the endpoint resolved to an absolute URL.
func (a *Agent) RegisterOnce(ctx context.Context) (string, error) {
	body, err := json.Marshal(RegisterRequest{URL: a.Self, Slots: a.Slots})
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.Coordinator+"/fleet/register", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return "", fmt.Errorf("register: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var rep RegisterReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return "", err
	}
	if rep.ArtifactURL != "" && !a.artifactSeen && a.OnArtifactURL != nil {
		a.artifactSeen = true
		a.OnArtifactURL(a.resolveArtifactURL(rep.ArtifactURL))
	}
	return rep.ID, nil
}

// resolveArtifactURL makes an advertised artifact endpoint absolute:
// a path-relative advertisement ("/artifact") joins the coordinator
// base URL the agent already talks to; absolute URLs pass through.
func (a *Agent) resolveArtifactURL(adv string) string {
	if strings.HasPrefix(adv, "/") {
		return strings.TrimRight(a.Coordinator, "/") + adv
	}
	return adv
}

// deregister tells the coordinator this worker is draining. Best
// effort under its own short deadline — the coordinator's heartbeat
// timeout is the backstop if the call is lost. The call runs on a
// shallow clone of the configured client with its Timeout clamped to
// the shutdown budget, so an injected client with a long (or absent)
// timeout can never stall shutdown past 2s, and the caller's shared
// client is never mutated.
func (a *Agent) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	body, _ := json.Marshal(RegisterRequest{URL: a.Self})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.Coordinator+"/fleet/deregister", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	cl := *a.client()
	if cl.Timeout <= 0 || cl.Timeout > 2*time.Second {
		cl.Timeout = 2 * time.Second
	}
	resp, err := cl.Do(req)
	if err != nil {
		a.logf("fleet: deregister from %s failed: %v", a.Coordinator, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
}

// Run keeps the worker registered until ctx is cancelled, then
// deregisters. Registration failures are retried on the heartbeat
// cadence (a coordinator that is briefly down loses nothing but
// freshness), so Run never returns early.
func (a *Agent) Run(ctx context.Context) error {
	interval := a.Interval
	if interval <= 0 {
		interval = 3 * time.Second
	}
	// One ticker for the lifetime of the loop: time.After in a
	// heartbeat loop allocates a timer per beat that is only reclaimed
	// when it fires, which for long-lived agents is steady garbage.
	tick := time.NewTicker(interval)
	defer tick.Stop()
	registered := false
	for {
		if id, err := a.RegisterOnce(ctx); err != nil {
			if ctx.Err() == nil {
				a.logf("fleet: register with %s failed (retrying in %s): %v", a.Coordinator, interval, err)
			}
		} else if !registered {
			registered = true
			a.logf("fleet: registered with %s as %s", a.Coordinator, id)
		}
		select {
		case <-ctx.Done():
			if registered {
				a.deregister()
			}
			return ctx.Err()
		case <-tick.C:
		}
	}
}
