package mat2c

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCompileIdenticalArtifacts compiles the same programs
// from many goroutines across several targets, with and without the
// cache, and asserts every goroutine observes byte-identical artifacts
// per (program, target). Designed to run under -race: it exercises the
// pdesc resolution cache, the shared built-in catalog, the compilation
// cache, and concurrent simulator runs over a shared Result.
func TestConcurrentCompileIdenticalArtifacts(t *testing.T) {
	programs := []struct {
		name, src, params string
	}{
		{"scale", "function y = scale(x, a)\ny = a .* x + 1;\nend", "real(1,:), real"},
		{"dot", "function s = dot(a, b)\ns = sum(a .* b);\nend", "real(1,:), real(1,:)"},
		{"cmag", "function m = cmag(z)\nm = real(z) .* real(z) + imag(z) .* imag(z);\nend", "complex(1,:)"},
	}
	targets := []string{"dspasip", "scalar", "wide2", "wide8", "nocomplex", "nosimd"}

	type key struct{ prog, target string }
	want := map[key]string{}
	for _, p := range programs {
		types, err := ParseTypes(p.params)
		if err != nil {
			t.Fatal(err)
		}
		for _, tgt := range targets {
			res, err := Compile(p.src, p.name, types, Options{Target: tgt})
			if err != nil {
				t.Fatalf("%s on %s: %v", p.name, tgt, err)
			}
			want[key{p.name, tgt}] = res.CSource() + "\x00" + res.CHeader() + "\x00" + res.IRText()
		}
	}

	cache := NewCache(64)
	const workers = 24
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				p := programs[(w+i)%len(programs)]
				tgt := targets[(w*3+i)%len(targets)]
				types, err := ParseTypes(p.params)
				if err != nil {
					errs <- err
					return
				}
				var res *Result
				if (w+i)%2 == 0 {
					res, _, err = CompileCached(cache, p.src, p.name, types, Options{Target: tgt})
				} else {
					res, err = Compile(p.src, p.name, types, Options{Target: tgt})
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d: %s on %s: %w", w, p.name, tgt, err)
					return
				}
				got := res.CSource() + "\x00" + res.CHeader() + "\x00" + res.IRText()
				if got != want[key{p.name, tgt}] {
					errs <- fmt.Errorf("worker %d: %s on %s: artifact differs from sequential compile", w, p.name, tgt)
					return
				}
				// Shared cached Results must support concurrent Run.
				if p.name == "scale" {
					out, _, err := res.Run(NewVector(1, 2, 3), 2.0)
					if err != nil {
						errs <- fmt.Errorf("worker %d: run: %w", w, err)
						return
					}
					if a := out[0].(*Array); a.F[2] != 7 {
						errs <- fmt.Errorf("worker %d: run computed %v", w, a.F)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := cache.Stats()
	if st.Hits == 0 {
		t.Error("concurrent cached compiles recorded no hits")
	}
}

// TestConcurrentLoadProcessor hammers the named-target resolution cache
// from many goroutines (run under -race) and checks every caller sees
// one shared, consistent description per name.
func TestConcurrentLoadProcessor(t *testing.T) {
	names := Targets()
	const workers = 16
	var wg sync.WaitGroup
	procs := make([][]*Processor, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			procs[w] = make([]*Processor, len(names))
			for i, name := range names {
				p, err := LoadProcessor(name)
				if err != nil {
					t.Errorf("worker %d: %s: %v", w, name, err)
					return
				}
				if p.Name != name {
					t.Errorf("worker %d: resolved %q, got %q", w, name, p.Name)
				}
				// Exercise the lazy instruction index concurrently.
				p.HasInstr("fma")
				procs[w][i] = p
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range names {
			if procs[w] == nil || procs[0] == nil {
				continue
			}
			if procs[w][i] != procs[0][i] {
				t.Errorf("%s: goroutines observed different Processor pointers", names[i])
			}
		}
	}
}
