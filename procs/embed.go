// Package procs embeds the shipped processor descriptions so compiled
// binaries (notably the mat2cd daemon) can resolve targets without a
// procs/ directory on disk. cmd/procgen regenerates the JSON files from
// the built-in catalog; the embedded copies track whatever is checked
// in.
package procs

import "embed"

// FS holds every shipped *.json processor description.
//
//go:embed *.json
var FS embed.FS
