package mat2c

import (
	"fmt"
	"time"

	"mat2c/internal/artifact"
	"mat2c/internal/cgen"
	"mat2c/internal/core"
	"mat2c/internal/ir"
	"mat2c/internal/isel"
)

// encodeArtifact serializes a compiled result into its durable form
// under its content address. Every field a restored Result can be asked
// for is rendered here, at encode time, so decoding never needs the IR
// or AST object graphs.
func encodeArtifact(key string, r *Result) []byte {
	if r.art != nil {
		// Already restored from an artifact: re-encode the original
		// (deterministic, so the bytes written back match what was read).
		return artifact.Encode(r.art, cacheKeyVersion)
	}
	a := &artifact.Artifact{
		Key:             key,
		Entry:           r.res.Entry,
		Target:          r.proc.Name,
		Program:         r.res.Program,
		CSource:         r.res.CSource,
		CHeader:         r.res.CHeader,
		CPrototype:      cgen.Prototype(r.res.Func),
		IRText:          ir.Print(r.res.Func),
		ASTText:         formatFile(r.res.Info.File),
		Warnings:        r.Warnings(),
		VectorizedLoops: r.res.VectorizedLoops,
		Intrinsics:      map[string]int{},
	}
	for name, n := range r.res.Intrinsics.Selected {
		a.Intrinsics[name] = n
	}
	for _, st := range r.res.Stages {
		a.Stages = append(a.Stages, artifact.StageTime{Stage: st.Stage, Nanos: st.Duration.Nanoseconds()})
	}
	return artifact.Encode(a, cacheKeyVersion)
}

// decodeArtifact rebuilds a Result from stored bytes. key is the
// content address the bytes were fetched under; an artifact carrying a
// different embedded key (a misfiled or renamed store entry) is
// rejected as corrupt. opts must be the same options the key was
// derived from — the restored Result reuses their resolved processor.
func decodeArtifact(data []byte, key string, opts Options) (*Result, error) {
	a, err := artifact.Decode(data, cacheKeyVersion)
	if err != nil {
		return nil, err
	}
	if a.Key != key {
		return nil, fmt.Errorf("%w: artifact key %s stored under %s", artifact.ErrCorrupt, a.Key, key)
	}
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	intr := isel.Stats{Selected: map[string]int{}}
	for name, n := range a.Intrinsics {
		intr.Selected[name] = n
	}
	stages := make([]core.StageTime, 0, len(a.Stages))
	for _, st := range a.Stages {
		stages = append(stages, core.StageTime{Stage: st.Stage, Duration: time.Duration(st.Nanos)})
	}
	res := core.Restored(a.Entry, a.Program, a.CSource, a.CHeader, a.VectorizedLoops, intr, stages, cfg)
	return &Result{res: res, proc: cfg.Processor, art: a}, nil
}
