module mat2c

go 1.22
