package mat2c

import (
	"errors"
	"testing"

	"mat2c/internal/artifact"
)

// openTestStore attaches a fresh DiskStore over dir to a new Cache.
func openTestStore(t *testing.T, dir string) *artifact.DiskStore {
	t.Helper()
	s, err := artifact.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiskTierWarmsSecondCache(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Target: "dspasip"}

	c1 := NewCache(8)
	c1.SetStore(openTestStore(t, dir))
	orig, hit, err := CompileCached(c1, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("cold compile reported hit")
	}
	c1.Flush()
	if st := c1.Stats(); st.Compiles != 1 || st.DiskMisses != 1 {
		t.Errorf("cold stats = %+v, want 1 compile / 1 disk miss", st)
	}

	// A second cache over the same directory — a separate process in
	// miniature — must restore the artifact from disk without compiling.
	c2 := NewCache(8)
	c2.SetStore(openTestStore(t, dir))
	res, hit, err := CompileCached(c2, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warm cache missed: disk tier not consulted")
	}
	st := c2.Stats()
	if st.Compiles != 0 {
		t.Errorf("warm cache compiled %d times, want 0", st.Compiles)
	}
	if st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}
	if st.Disk == nil {
		t.Fatal("Stats.Disk is nil with a DiskStore attached")
	}
	if st.Disk.Hits != 1 || st.Disk.Entries != 1 {
		t.Errorf("store stats = %+v, want 1 hit / 1 entry", st.Disk)
	}

	// The restored Result is equivalent to the original: same rendered
	// artifacts, and it still executes.
	if res.CSource() != orig.CSource() {
		t.Error("restored C source differs")
	}
	if res.CHeader() != orig.CHeader() {
		t.Error("restored C header differs")
	}
	if res.CPrototype() != orig.CPrototype() {
		t.Error("restored C prototype differs")
	}
	if res.IRText() != orig.IRText() {
		t.Error("restored IR text differs")
	}
	if got, want := res.res.Program.ContentHash(), orig.res.Program.ContentHash(); got != want {
		t.Errorf("restored program hash %s, want %s", got, want)
	}
	out, _, err := res.Run(NewVector(1, 2), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if a := out[0].(*Array); a.F[0] != 3 || a.F[1] != 5 {
		t.Errorf("restored result computed %v", a.F)
	}

	// The memory tier now fronts the restored entry.
	if _, hit, _ = CompileCached(c2, cacheTestSrc, "scale", cacheTestParams, opts); !hit {
		t.Error("second warm lookup missed memory")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Errorf("memory hit went back to disk: %d disk hits", st.DiskHits)
	}
}

// TestDiskTierCorruptionDegradesToRecompile is the acceptance criterion
// that a corrupted store entry can never fail a request: the decode
// failure is counted, the entry is dropped, and the caller gets a
// freshly compiled result.
func TestDiskTierCorruptionDegradesToRecompile(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Target: "dspasip"}
	key, err := CacheKey(cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}

	store := openTestStore(t, dir)
	c1 := NewCache(8)
	c1.SetStore(store)
	if _, _, err := CompileCached(c1, cacheTestSrc, "scale", cacheTestParams, opts); err != nil {
		t.Fatal(err)
	}
	c1.Flush()

	// Flip a byte in the stored entry. The checksum catches it on read.
	data, err := store.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := store.Put(key, data); err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(8)
	c2.SetStore(openTestStore(t, dir))
	res, hit, err := CompileCached(c2, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatalf("corrupted store entry surfaced an error: %v", err)
	}
	if hit {
		t.Error("corrupted entry reported as a hit")
	}
	if res == nil {
		t.Fatal("no result after degrade-to-recompile")
	}
	st := c2.Stats()
	if st.DecodeErrors != 1 {
		t.Errorf("decode errors = %d, want 1", st.DecodeErrors)
	}
	if st.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (recompile)", st.Compiles)
	}
	out, _, err := res.Run(NewVector(3), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if a := out[0].(*Array); a.F[0] != 7 {
		t.Errorf("recompiled result computed %v", a.F)
	}

	// The recompile wrote a good entry back through; a third cache must
	// get a clean disk hit.
	c2.Flush()
	c3 := NewCache(8)
	c3.SetStore(openTestStore(t, dir))
	if _, hit, err := CompileCached(c3, cacheTestSrc, "scale", cacheTestParams, opts); err != nil || !hit {
		t.Errorf("store not healed after recompile: hit=%v err=%v", hit, err)
	}
}

func TestCachePutWritesThrough(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Target: "dspasip"}
	res, err := Compile(cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}

	store := openTestStore(t, dir)
	c := NewCache(8)
	c.SetStore(store)
	// The server's cache-bypass path: compiled outside the cache, stored
	// explicitly. It must reach the durable tier too.
	c.Put(key, res)
	c.Flush()
	if _, err := store.Get(key); err != nil {
		t.Fatalf("explicit Put did not write through: %v", err)
	}

	c2 := NewCache(8)
	c2.SetStore(openTestStore(t, dir))
	if _, hit, err := CompileCached(c2, cacheTestSrc, "scale", cacheTestParams, opts); err != nil || !hit {
		t.Errorf("written-through entry not restored: hit=%v err=%v", hit, err)
	}
}

func TestDiskTierMissingEntryCounted(t *testing.T) {
	c := NewCache(8)
	c.SetStore(openTestStore(t, t.TempDir()))
	// Drain the async write-through before TempDir cleanup removes the
	// store directory out from under it.
	defer c.Flush()
	if _, hit, err := CompileCached(c, cacheTestSrc, "scale", cacheTestParams, Options{Target: "dspasip", SkipC: true}); err != nil || hit {
		t.Fatalf("empty store: hit=%v err=%v", hit, err)
	}
	st := c.Stats()
	if st.DiskMisses != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want 1 disk miss / 0 disk hits", st)
	}
}

// TestDecodeArtifactRejectsKeyMismatch pins the defense against a store
// that hands back bytes filed under the wrong key.
func TestDecodeArtifactRejectsKeyMismatch(t *testing.T) {
	opts := Options{Target: "dspasip"}
	res, err := Compile(cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeArtifact(key, res)
	if _, err := decodeArtifact(data, key, opts); err != nil {
		t.Fatalf("round trip under the right key failed: %v", err)
	}
	_, err = decodeArtifact(data, "0000000000000000000000000000000000000000000000000000000000000000", opts)
	if !errors.Is(err, artifact.ErrCorrupt) {
		t.Errorf("key mismatch returned %v, want ErrCorrupt", err)
	}
}
