package mat2c

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mat2c/internal/artifact"
)

const sfSrc = "function y = sf(x, a)\ny = a .* x + 2;\nend"

func sfTypes(t *testing.T) []Type {
	t.Helper()
	types, err := ParseTypes("real(1,:), real")
	if err != nil {
		t.Fatal(err)
	}
	return types
}

// assertStatsConsistent pins the miss-accounting invariant: a miss is
// counted exactly once per logical lookup, at the point it resolves, so
// the resolution counters must add up exactly — no matter how many
// times the retry loop re-probed the key or how the flights interleaved.
func assertStatsConsistent(t *testing.T, c *Cache) {
	t.Helper()
	st := c.Stats()
	if st.Misses != st.Compiles+st.DiskHits+st.FlightWaits {
		t.Errorf("stats inconsistent: misses=%d, want compiles(%d) + disk_hits(%d) + flight_waits(%d) = %d",
			st.Misses, st.Compiles, st.DiskHits, st.FlightWaits, st.Compiles+st.DiskHits+st.FlightWaits)
	}
}

// blockingStore is an artifact.Store whose Get parks until the test
// releases it, pinning the flight leader inside the disk tier so
// followers provably arrive while the compilation is in progress.
type blockingStore struct {
	gets chan chan struct{} // each Get sends its release channel
}

func newBlockingStore() *blockingStore {
	return &blockingStore{gets: make(chan chan struct{}, 16)}
}

func (s *blockingStore) Get(key string) ([]byte, error) {
	release := make(chan struct{})
	s.gets <- release
	<-release
	return nil, fmt.Errorf("blockingStore: %w", artifact.ErrNotFound)
}

func (s *blockingStore) Put(key string, data []byte) error { return nil }
func (s *blockingStore) Delete(key string) error           { return nil }
func (s *blockingStore) Len() (int, error)                 { return 0, nil }

// awaitGet returns the release channel of the next Get call.
func (s *blockingStore) awaitGet(t *testing.T) chan struct{} {
	t.Helper()
	select {
	case ch := <-s.gets:
		return ch
	case <-time.After(10 * time.Second):
		t.Fatal("store.Get was never called")
		return nil
	}
}

// TestSingleflightSharesOneCompile parks the leader in the disk tier,
// piles followers onto the same key, and asserts exactly one pipeline
// run served every caller with one shared artifact.
func TestSingleflightSharesOneCompile(t *testing.T) {
	cache := NewCache(8)
	store := newBlockingStore()
	cache.SetStore(store)
	types := sfTypes(t)

	const followers = 8
	results := make(chan *Result, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, _, err := CompileCached(cache, sfSrc, "sf", types, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		results <- res
	}()
	release := store.awaitGet(t) // leader is now mid-miss

	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, hit, err := CompileCached(cache, sfSrc, "sf", types, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			if !hit {
				t.Error("follower reported hit=false")
			}
			results <- res
		}()
	}
	// Wait until every follower has joined the flight, then let the
	// leader proceed (disk miss -> compile).
	for deadline := time.Now().Add(10 * time.Second); ; {
		if cache.Stats().FlightWaits == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers joined the flight", cache.Stats().FlightWaits, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	st := cache.Stats()
	if st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (singleflight)", st.Compiles)
	}
	if st.FlightWaits != followers {
		t.Errorf("FlightWaits = %d, want %d", st.FlightWaits, followers)
	}
	var first *Result
	n := 0
	for res := range results {
		if first == nil {
			first = res
		} else if res != first {
			t.Error("callers received distinct Result pointers")
		}
		n++
	}
	if n != followers+1 {
		t.Errorf("%d callers returned, want %d", n, followers+1)
	}
	assertStatsConsistent(t, cache)
}

// TestSingleflightFollowerHonorsOwnContext: a follower waiting on
// another caller's compilation must still unblock when its own context
// is cancelled, without disturbing the leader.
func TestSingleflightFollowerHonorsOwnContext(t *testing.T) {
	cache := NewCache(8)
	store := newBlockingStore()
	cache.SetStore(store)
	types := sfTypes(t)

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := CompileCached(cache, sfSrc, "sf", types, Options{})
		leaderDone <- err
	}()
	release := store.awaitGet(t)

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, _, err := CompileCachedContext(ctx, cache, sfSrc, "sf", types, Options{})
		followerDone <- err
	}()
	for cache.Stats().FlightWaits == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-followerDone; !errors.Is(err, context.Canceled) {
		t.Errorf("follower err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Errorf("leader err = %v", err)
	}
	if st := cache.Stats(); st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1", st.Compiles)
	}
	assertStatsConsistent(t, cache)
}

// TestSingleflightLeaderCancellationRetries: when the leader's own
// context dies mid-compile, followers must not inherit its
// cancellation error — one of them retries, becomes leader, and
// compiles.
func TestSingleflightLeaderCancellationRetries(t *testing.T) {
	cache := NewCache(8)
	store := newBlockingStore()
	cache.SetStore(store)
	types := sfTypes(t)

	lctx, lcancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := CompileCachedContext(lctx, cache, sfSrc, "sf", types, Options{})
		leaderDone <- err
	}()
	release := store.awaitGet(t)

	followerDone := make(chan error, 1)
	go func() {
		res, hit, err := CompileCached(cache, sfSrc, "sf", types, Options{})
		if err == nil && res == nil {
			err = errors.New("nil result")
		}
		_ = hit
		followerDone <- err
	}()
	for cache.Stats().FlightWaits == 0 {
		time.Sleep(time.Millisecond)
	}

	// Kill the leader's context, then let its disk lookup return: the
	// pipeline observes the dead context and the flight is marked
	// cancelled, sending the follower around for another attempt (whose
	// own disk lookup must also be released).
	lcancel()
	close(release)
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v, want context.Canceled", err)
	}
	close(store.awaitGet(t)) // follower's retry hits the disk tier
	if err := <-followerDone; err != nil {
		t.Errorf("follower err = %v, want success after retry", err)
	}
	if st := cache.Stats(); st.Compiles != 1 {
		t.Errorf("Compiles = %d, want 1 (only the retrying follower compiled)", st.Compiles)
	}
	// The retrying follower counted one flight wait AND one compile —
	// it performed two logical lookups, so both resolutions count.
	assertStatsConsistent(t, cache)
}

// TestSingleflightSharesDeterministicErrors: a compile error that is
// not the leader's cancellation is the input's fault and is shared
// with followers rather than recompiled.
func TestSingleflightSharesDeterministicErrors(t *testing.T) {
	cache := NewCache(8)
	store := newBlockingStore()
	cache.SetStore(store)
	types := sfTypes(t)
	bad := "function y = sf(x, a)\ny = undefined_fn(x);\nend"

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := CompileCached(cache, bad, "sf", types, Options{})
		leaderDone <- err
	}()
	release := store.awaitGet(t)
	followerDone := make(chan error, 1)
	go func() {
		_, _, err := CompileCached(cache, bad, "sf", types, Options{})
		followerDone <- err
	}()
	for cache.Stats().FlightWaits == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	lerr, ferr := <-leaderDone, <-followerDone
	if lerr == nil || ferr == nil {
		t.Fatalf("expected compile errors, got leader=%v follower=%v", lerr, ferr)
	}
	if lerr.Error() != ferr.Error() {
		t.Errorf("follower error %q differs from leader's %q", ferr, lerr)
	}
	if st := cache.Stats(); st.Compiles != 0 {
		t.Errorf("Compiles = %d, want 0 (errors are not cached but also not recompiled by followers)", st.Compiles)
	}
	assertStatsConsistent(t, cache)
}
