package mat2c

import (
	"fmt"
	"testing"
)

const cacheTestSrc = `function y = scale(x, a)
y = a .* x + 1;
end`

var cacheTestParams = []Type{Vector(Real), Scalar(Real)}

func TestCompileCachedHitReturnsSameArtifact(t *testing.T) {
	c := NewCache(8)
	opts := Options{Target: "dspasip"}

	r1, hit, err := CompileCached(c, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first compile reported hit")
	}
	r2, hit, err := CompileCached(c, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second identical compile missed")
	}
	if r1 != r2 {
		t.Error("hit did not return the shared cached Result")
	}
	if r1.CSource() != r2.CSource() {
		t.Error("artifacts differ")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}

	// The cached result still runs correctly.
	out, _, err := r2.Run(NewVector(1, 2), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if a := out[0].(*Array); a.F[0] != 3 || a.F[1] != 5 {
		t.Errorf("cached result computed %v", a.F)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base, err := CacheKey(cacheTestSrc, "scale", cacheTestParams, Options{Target: "dspasip"})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func() (string, error){
		"source": func() (string, error) {
			return CacheKey(cacheTestSrc+" ", "scale", cacheTestParams, Options{Target: "dspasip"})
		},
		"params": func() (string, error) {
			return CacheKey(cacheTestSrc, "scale", []Type{Vector(Complex), Scalar(Real)}, Options{Target: "dspasip"})
		},
		"target": func() (string, error) {
			return CacheKey(cacheTestSrc, "scale", cacheTestParams, Options{Target: "wide8"})
		},
		"pipeline": func() (string, error) {
			return CacheKey(cacheTestSrc, "scale", cacheTestParams, Options{Target: "dspasip", NoVectorize: true})
		},
		"baseline": func() (string, error) {
			return CacheKey(cacheTestSrc, "scale", cacheTestParams, Options{Target: "dspasip", Baseline: true})
		},
		"skipc": func() (string, error) {
			return CacheKey(cacheTestSrc, "scale", cacheTestParams, Options{Target: "dspasip", SkipC: true})
		},
	}
	for name, fn := range variants {
		k, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == base {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}

	// Entry "" resolves to the first function; the key must be stable
	// regardless of spelling it out.
	k1, _ := CacheKey(cacheTestSrc, "", cacheTestParams, Options{Target: "dspasip"})
	k2, _ := CacheKey(cacheTestSrc, "", cacheTestParams, Options{Target: "dspasip"})
	if k1 != k2 {
		t.Error("identical inputs produced different keys")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("function y = f(x)\ny = x + %d;\nend", i)
		if _, _, err := CompileCached(c, src, "f", []Type{Scalar(Real)}, Options{Target: "scalar", SkipC: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (bounded)", st.Entries)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}

	// Most recent entries are retained, oldest were evicted.
	if _, hit, _ := CompileCached(c, "function y = f(x)\ny = x + 3;\nend", "f", []Type{Scalar(Real)}, Options{Target: "scalar", SkipC: true}); !hit {
		t.Error("most recent entry was evicted")
	}
	if _, hit, _ := CompileCached(c, "function y = f(x)\ny = x + 0;\nend", "f", []Type{Scalar(Real)}, Options{Target: "scalar", SkipC: true}); hit {
		t.Error("oldest entry survived a full eviction cycle")
	}
}

func TestCompileCachedNilCache(t *testing.T) {
	res, hit, err := CompileCached(nil, cacheTestSrc, "scale", cacheTestParams, Options{Target: "dspasip", SkipC: true})
	if err != nil {
		t.Fatal(err)
	}
	if hit || res == nil {
		t.Errorf("nil cache: hit=%v res=%v", hit, res)
	}
}

func TestCompileCachedErrorNotCached(t *testing.T) {
	c := NewCache(4)
	if _, _, err := CompileCached(c, "function y = f(x)\ny = ((x;\nend", "f", []Type{Scalar(Real)}, Options{Target: "scalar"}); err == nil {
		t.Fatal("bad program compiled")
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Errorf("failed compile left %d cache entries", st.Entries)
	}
}

func TestStageTimingsRecorded(t *testing.T) {
	res, err := Compile(cacheTestSrc, "scale", cacheTestParams, Options{Target: "dspasip"})
	if err != nil {
		t.Fatal(err)
	}
	stages := res.StageTimings()
	names := StageNames()
	if len(stages) != len(names) {
		t.Fatalf("got %d stage timings, want %d", len(stages), len(names))
	}
	var total int64
	for i, st := range stages {
		if st.Stage != names[i] {
			t.Errorf("stage %d = %q, want %q (pipeline order)", i, st.Stage, names[i])
		}
		if st.Duration < 0 {
			t.Errorf("stage %s has negative duration", st.Stage)
		}
		total += st.Duration.Nanoseconds()
	}
	if total <= 0 {
		t.Error("all stage durations are zero")
	}

	// SkipC leaves the cgen stage at zero.
	res, err = Compile(cacheTestSrc, "scale", cacheTestParams, Options{Target: "dspasip", SkipC: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.StageTimings() {
		if st.Stage == "cgen" && st.Duration != 0 {
			t.Errorf("cgen ran (%v) despite SkipC", st.Duration)
		}
	}
}
