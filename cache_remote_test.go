package mat2c

import (
	"net/http/httptest"
	"testing"

	"mat2c/internal/artifact"
	"mat2c/internal/artifact/remote"
)

// openTestOrigin stands up a blob-protocol origin over a fresh disk
// store and returns a client factory for it, plus the backing store for
// direct inspection.
func openTestOrigin(t *testing.T) (*artifact.DiskStore, func() *remote.RemoteStore) {
	t.Helper()
	store, err := artifact.OpenDisk(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(remote.NewServer(store, 0).Handler())
	t.Cleanup(ts.Close)
	return store, func() *remote.RemoteStore {
		return remote.New(ts.URL+"/artifact", remote.Options{})
	}
}

// TestRemoteTierWarmsSecondProcess is the fleet warm-start criterion in
// miniature: a cache that never compiled (and whose local disk never
// saw) a variant restores it from the shared remote with zero compiles.
func TestRemoteTierWarmsSecondProcess(t *testing.T) {
	_, client := openTestOrigin(t)
	opts := Options{Target: "dspasip"}

	// "Worker A": compiles cold, writes through to its disk and the remote.
	cA := NewCache(8)
	cA.SetStore(openTestStore(t, t.TempDir()))
	cA.SetRemoteStore(client())
	orig, hit, err := CompileCached(cA, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("cold compile reported hit")
	}
	cA.Flush()
	if st := cA.Stats(); st.Compiles != 1 || st.RemoteStoreErrors != 0 {
		t.Fatalf("worker A stats: %+v", st)
	}

	// "Worker B": fresh memory, fresh (empty) disk, same remote.
	cB := NewCache(8)
	cB.SetStore(openTestStore(t, t.TempDir()))
	cB.SetRemoteStore(client())
	res, hit, err := CompileCached(cB, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warm worker missed: remote tier not consulted")
	}
	st := cB.Stats()
	if st.Compiles != 0 {
		t.Errorf("warm worker compiled %d times, want 0", st.Compiles)
	}
	if st.RemoteHits != 1 || st.DiskMisses != 1 {
		t.Errorf("stats = %+v, want 1 remote hit after 1 disk miss", st)
	}
	if st.Misses != st.Compiles+st.DiskHits+st.RemoteHits+st.FlightWaits {
		t.Errorf("miss invariant violated: %+v", st)
	}
	if st.Remote == nil || st.Remote.Hits != 1 || st.Remote.BreakerState != "closed" {
		t.Errorf("remote client stats: %+v", st.Remote)
	}
	if res.CSource() != orig.CSource() || res.IRText() != orig.IRText() {
		t.Error("remotely restored artifact differs from the original")
	}
	out, _, err := res.Run(NewVector(1, 2), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if a := out[0].(*Array); a.F[0] != 3 || a.F[1] != 5 {
		t.Errorf("restored result computed %v", a.F)
	}

	// The remote hit warmed memory AND the local disk: the next lookup
	// hits memory, and a third cache over B's disk dir needs no network.
	if _, hit, _ = CompileCached(cB, cacheTestSrc, "scale", cacheTestParams, opts); !hit {
		t.Error("post-restore lookup missed memory")
	}
	cB.Flush()
	after := cB.Stats()
	if after.RemoteHits != 1 {
		t.Errorf("memory hit went back to the remote: %d remote hits", after.RemoteHits)
	}
	if after.Disk == nil || after.Disk.Entries == 0 {
		t.Error("remote hit did not warm the local disk tier")
	}
}

// TestRemoteCorruptEntryDegradesToRecompile plants an entry in the
// origin that passes the wire checksum but fails artifact decoding: the
// cache counts a remote decode error, recompiles, and deletes the dead
// entry from the origin so the fleet stops fetching it.
func TestRemoteCorruptEntryDegradesToRecompile(t *testing.T) {
	origin, client := openTestOrigin(t)
	opts := Options{Target: "dspasip"}
	key, err := CacheKey(cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A well-framed blob that is not a decodable artifact.
	if err := origin.Put(key, []byte("not an artifact at all")); err != nil {
		t.Fatal(err)
	}

	c := NewCache(8)
	c.SetRemoteStore(client())
	res, hit, err := CompileCached(c, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatalf("corrupt remote entry surfaced an error: %v", err)
	}
	if hit {
		t.Error("corrupt remote entry reported as a hit")
	}
	if res == nil {
		t.Fatal("no result after degrade-to-recompile")
	}
	c.Flush()
	st := c.Stats()
	if st.RemoteDecodeErrors != 1 || st.RemoteHits != 0 || st.Compiles != 1 {
		t.Errorf("stats = %+v, want 1 remote decode error and 1 recompile", st)
	}
	// The dead entry was evicted from the origin; the recompile's
	// write-through replaced it with a good one.
	data, err := origin.Get(key)
	if err != nil {
		t.Fatalf("origin entry after heal: %v", err)
	}
	if _, err := decodeArtifact(data, key, opts); err != nil {
		t.Errorf("origin not healed after recompile: %v", err)
	}
}

// TestRemoteOutageDegradesToLocal points the remote tier at a dead
// address: every lookup and write-through must succeed locally with the
// failure counted, never surfaced.
func TestRemoteOutageDegradesToLocal(t *testing.T) {
	opts := Options{Target: "dspasip"}
	c := NewCache(8)
	c.SetStore(openTestStore(t, t.TempDir()))
	c.SetRemoteStore(remote.New("http://127.0.0.1:1/artifact", remote.Options{
		MaxAttempts:     1,
		BreakerCooldown: 1,
	}))
	res, hit, err := CompileCached(c, cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatalf("remote outage failed the request: %v", err)
	}
	if hit || res == nil {
		t.Fatalf("outage compile: hit=%v res=%v", hit, res != nil)
	}
	c.Flush() // must return despite the dead remote
	st := c.Stats()
	if st.Compiles != 1 || st.RemoteMisses != 1 {
		t.Errorf("stats = %+v, want 1 compile / 1 remote miss", st)
	}
	if st.RemoteStoreErrors != 1 {
		t.Errorf("write-through against dead remote not counted: %+v", st)
	}
	if st.Misses != st.Compiles+st.DiskHits+st.RemoteHits+st.FlightWaits {
		t.Errorf("miss invariant violated: %+v", st)
	}
}

// TestDiskHitPublishesUpward: an artifact compiled before the shared
// cache existed (local disk only) is offered to the remote on the next
// disk hit, so the fleet converges without recompiles.
func TestDiskHitPublishesUpward(t *testing.T) {
	origin, client := openTestOrigin(t)
	opts := Options{Target: "dspasip"}
	dir := t.TempDir()
	key, err := CacheKey(cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Seed the local disk with no remote attached.
	seed := NewCache(8)
	seed.SetStore(openTestStore(t, dir))
	if _, _, err := CompileCached(seed, cacheTestSrc, "scale", cacheTestParams, opts); err != nil {
		t.Fatal(err)
	}
	seed.Flush()

	// A fresh cache over the same disk, now fleet-connected: the disk
	// hit publishes upward.
	c := NewCache(8)
	c.SetStore(openTestStore(t, dir))
	c.SetRemoteStore(client())
	if _, hit, err := CompileCached(c, cacheTestSrc, "scale", cacheTestParams, opts); err != nil || !hit {
		t.Fatalf("disk hit: hit=%v err=%v", hit, err)
	}
	c.Flush()
	if has, err := origin.Has(key); err != nil || !has {
		t.Fatalf("disk hit did not publish to the remote: has=%v err=%v", has, err)
	}
	if st := c.Stats(); st.DiskHits != 1 || st.RemoteStoreErrors != 0 {
		t.Errorf("stats = %+v", st)
	}

	// A second disk hit must not re-upload: the Has probe short-circuits.
	c2 := NewCache(8)
	c2.SetStore(openTestStore(t, dir))
	rc := client()
	c2.SetRemoteStore(rc)
	if _, hit, err := CompileCached(c2, cacheTestSrc, "scale", cacheTestParams, opts); err != nil || !hit {
		t.Fatalf("second disk hit: hit=%v err=%v", hit, err)
	}
	c2.Flush()
	if st := rc.Stats(); st.Puts != 0 {
		t.Errorf("already-published entry re-uploaded: %+v", st)
	}
}

// TestWriteThroughReachesBothTiers: a fresh compile lands in the local
// store and the remote origin from one encode.
func TestWriteThroughReachesBothTiers(t *testing.T) {
	origin, client := openTestOrigin(t)
	opts := Options{Target: "dspasip"}
	key, err := CacheKey(cacheTestSrc, "scale", cacheTestParams, opts)
	if err != nil {
		t.Fatal(err)
	}
	local := openTestStore(t, t.TempDir())
	c := NewCache(8)
	c.SetStore(local)
	c.SetRemoteStore(client())
	if _, _, err := CompileCached(c, cacheTestSrc, "scale", cacheTestParams, opts); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	localData, err := local.Get(key)
	if err != nil {
		t.Fatalf("local tier missing the compile: %v", err)
	}
	remoteData, err := origin.Get(key)
	if err != nil {
		t.Fatalf("remote tier missing the compile: %v", err)
	}
	if string(localData) != string(remoteData) {
		t.Error("tiers hold different bytes for one key")
	}
}
