package mat2c

import (
	"fmt"
	"strconv"
	"strings"

	"mat2c/internal/sema"
)

// ParseType parses a textual parameter-type specification, the syntax
// the command-line tools use:
//
//	real                 scalar double
//	int                  integral scalar
//	complex              complex scalar
//	real(1,:)            row vector, run-time length
//	real(:,1)            column vector, run-time length
//	real(:,:)            matrix, run-time extents
//	complex(1,256)       row vector with a static length
//	real(8,8)            matrix with static extents
func ParseType(spec string) (Type, error) {
	spec = strings.TrimSpace(spec)
	name := spec
	shape := ""
	if i := strings.IndexByte(spec, '('); i >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return Type{}, fmt.Errorf("mat2c: bad type %q: missing ')'", spec)
		}
		name = strings.TrimSpace(spec[:i])
		shape = spec[i+1 : len(spec)-1]
	}
	var class Class
	switch strings.ToLower(name) {
	case "real", "double":
		class = Real
	case "int", "integer":
		class = Int
	case "complex":
		class = Complex
	case "logical", "bool":
		class = Bool
	default:
		return Type{}, fmt.Errorf("mat2c: unknown class %q (want real, int, complex, or logical)", name)
	}
	if shape == "" {
		return Scalar(class), nil
	}
	parts := strings.Split(shape, ",")
	if len(parts) != 2 {
		return Type{}, fmt.Errorf("mat2c: bad shape %q: want rows,cols", shape)
	}
	dim := func(s string) (int, error) {
		s = strings.TrimSpace(s)
		if s == ":" {
			return sema.DimUnknown, nil
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("mat2c: bad dimension %q", s)
		}
		return n, nil
	}
	r, err := dim(parts[0])
	if err != nil {
		return Type{}, err
	}
	c, err := dim(parts[1])
	if err != nil {
		return Type{}, err
	}
	return Type{Class: class, Shape: sema.Shape{Rows: r, Cols: c}}, nil
}

// ParseTypes parses a comma-separated list of parameter types. Shapes
// contain commas themselves, so items are split at top level only:
// "real(1,:), complex, int" has three items.
func ParseTypes(list string) ([]Type, error) {
	list = strings.TrimSpace(list)
	if list == "" {
		return nil, nil
	}
	var items []string
	depth := 0
	start := 0
	for i := 0; i < len(list); i++ {
		switch list[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				items = append(items, list[start:i])
				start = i + 1
			}
		}
	}
	items = append(items, list[start:])
	types := make([]Type, 0, len(items))
	for _, it := range items {
		t, err := ParseType(it)
		if err != nil {
			return nil, err
		}
		types = append(types, t)
	}
	return types, nil
}
