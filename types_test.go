package mat2c_test

import (
	"testing"

	mat2c "mat2c"
)

func TestParseType(t *testing.T) {
	cases := []struct {
		spec string
		want mat2c.Type
	}{
		{"real", mat2c.Scalar(mat2c.Real)},
		{"int", mat2c.Scalar(mat2c.Int)},
		{"complex", mat2c.Scalar(mat2c.Complex)},
		{"logical", mat2c.Scalar(mat2c.Bool)},
		{"double", mat2c.Scalar(mat2c.Real)},
		{"real(1,:)", mat2c.Vector(mat2c.Real)},
		{"complex(1,:)", mat2c.Vector(mat2c.Complex)},
		{"real(:,1)", mat2c.ColumnVector(mat2c.Real)},
		{"real(:,:)", mat2c.Matrix(mat2c.Real)},
		{"real(1,256)", mat2c.SizedVector(mat2c.Real, 256)},
		{"real(8,8)", mat2c.SizedMatrix(mat2c.Real, 8, 8)},
		{" complex ( 1 , : ) ", mat2c.Vector(mat2c.Complex)},
	}
	for _, c := range cases {
		got, err := mat2c.ParseType(c.spec)
		if err != nil {
			t.Errorf("ParseType(%q): %v", c.spec, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseType(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, spec := range []string{"", "float32", "real(1)", "real(1,2,3)", "real(1,", "real(x,y)", "real(-1,2)"} {
		if _, err := mat2c.ParseType(spec); err == nil {
			t.Errorf("ParseType(%q): expected error", spec)
		}
	}
}

func TestParseTypes(t *testing.T) {
	got, err := mat2c.ParseTypes("real(1,:), complex, int, real(4,4)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d types", len(got))
	}
	if !got[0].Equal(mat2c.Vector(mat2c.Real)) || !got[1].Equal(mat2c.Scalar(mat2c.Complex)) ||
		!got[2].Equal(mat2c.Scalar(mat2c.Int)) || !got[3].Equal(mat2c.SizedMatrix(mat2c.Real, 4, 4)) {
		t.Errorf("wrong types: %v", got)
	}
	if ts, err := mat2c.ParseTypes(""); err != nil || len(ts) != 0 {
		t.Error("empty list should parse to no types")
	}
	if _, err := mat2c.ParseTypes("real, bogus"); err == nil {
		t.Error("expected error")
	}
}
