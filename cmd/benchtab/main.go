// Command benchtab regenerates the paper's evaluation tables and
// figures on the cycle-model ASIP:
//
//	benchtab -table1      headline speedups (the abstract's "2x-30x")
//	benchtab -table2      static code size comparison
//	benchtab -fig2        per-feature ablation (fusion / SIMD / custom instr)
//	benchtab -fig3        SIMD-width sweep
//	benchtab -all         everything
//	benchtab -vmbench f   measure simulator throughput, write BENCH_vm.json to f
//
// Use -scale to shrink/grow problem sizes (1.0 = paper scale) and -proc
// to retarget Table I/II and Fig. 2. -jobs runs independent kernels on
// a bounded worker pool (results stay in deterministic order).
// -timeout bounds the whole run with one wall-clock deadline. -engine
// selects the VM execution engine (prepared, compiled or reference;
// all produce identical cycle counts — see docs/PERF.md).
// -cpuprofile/-memprofile
// write pprof profiles. Output is formatted text by default; -csv
// emits CSV per table, -json emits one machine-readable document for
// all requested tables (for BENCH_*.json trend tracking).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	mat2c "mat2c"
	"mat2c/internal/artifact"
	"mat2c/internal/artifact/remote"
	"mat2c/internal/bench"
	"mat2c/internal/pdesc"
	"mat2c/internal/profile"
	"mat2c/internal/vm"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		t1       = flag.Bool("table1", false, "print Table I (headline speedups)")
		t2       = flag.Bool("table2", false, "print Table II (code size)")
		t3       = flag.Bool("table3", false, "print Table III (compiler activity, extension)")
		f2       = flag.Bool("fig2", false, "print Figure 2 (feature ablation)")
		f3       = flag.Bool("fig3", false, "print Figure 3 (SIMD width sweep)")
		f4       = flag.Bool("fig4", false, "print Figure 4 (memory-cost sensitivity, extension)")
		all      = flag.Bool("all", false, "print everything")
		scale    = flag.Float64("scale", 1.0, "problem size multiplier (1.0 = paper scale)")
		proc     = flag.String("proc", "dspasip", "target for Table I/II and Fig. 2")
		csv      = flag.Bool("csv", false, "emit CSV instead of formatted tables")
		jsonOut  = flag.Bool("json", false, "emit one JSON report for the requested tables")
		jobs     = flag.Int("jobs", 1, "kernel-level worker pool size (1 = sequential)")
		timeout  = flag.Duration("timeout", 0, "bound total table-generation wall time (e.g. 5m; 0 = none)")
		engine   = flag.String("engine", "", "VM engine: prepared, compiled or reference (default: prepared, or MAT2C_VM_ENGINE)")
		superOpt = flag.String("superinst", "", "superinstruction fusion in the prepared engine: on or off (default: on, or MAT2C_VM_SUPERINST)")
		vmbench  = flag.String("vmbench", "", "measure simulator throughput and write the JSON report to this file (- for stdout)")
		vmtime   = flag.Duration("vmtime", 250*time.Millisecond, "per-engine measurement window for -vmbench")
		vmgate   = flag.Float64("vmgate", 0, "fail -vmbench unless superinst/prepared and compiled/prepared throughput on fir are at least this ratio (0 = no gate; CI uses a generous 0.5 to catch only collapses, not noise)")

		cacheDir   = flag.String("cachedir", "", "durable artifact store directory: compilations persist there and warm later runs")
		cacheBytes = flag.Int64("cachebytes", 0, "artifact store byte budget (0 = default 512 MiB; needs -cachedir)")
		cacheStats = flag.Bool("cachestats", false, "print cache-tier statistics to stderr after the run")
		artRemote  = flag.String("artifactremote", "", "blob-protocol `URL` of a fleet-shared artifact cache (e.g. http://coordinator:8723/artifact)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if !*t1 && !*t2 && !*t3 && !*f2 && !*f3 && !*f4 && !*all && *vmbench == "" {
		*all = true
	}
	if *csv && *jsonOut {
		return fatal(fmt.Errorf("-csv and -json are mutually exclusive"))
	}
	if *engine != "" {
		if err := vm.SetDefaultEngine(*engine); err != nil {
			return fatal(err)
		}
	}
	switch *superOpt {
	case "":
	case "on":
		vm.SetSuperinstEnabled(true)
	case "off":
		vm.SetSuperinstEnabled(false)
	default:
		return fatal(fmt.Errorf("-superinst: %q (want on or off)", *superOpt))
	}
	stop, err := profile.Start(*cpuProf, *memProf)
	if err != nil {
		return fatal(err)
	}
	defer stop()

	p, err := pdesc.Resolve(*proc)
	if err != nil {
		return fatal(err)
	}
	report := &bench.Report{Proc: p.Name, Scale: *scale}
	opts := []bench.Opt{bench.WithJobs(*jobs)}
	if *cacheDir != "" || *artRemote != "" || *cacheStats {
		cache := mat2c.NewCache(0)
		if *cacheDir != "" {
			store, err := artifact.OpenDisk(*cacheDir, *cacheBytes)
			if err != nil {
				return fatal(err)
			}
			cache.SetStore(store)
		}
		if *artRemote != "" {
			cache.SetRemoteStore(remote.New(*artRemote, remote.Options{}))
		}
		defer func() {
			// Wait for asynchronous store write-throughs so the run's
			// artifacts are durable before the process exits, then report.
			cache.Flush()
			if *cacheStats {
				st, _ := json.MarshalIndent(cache.Stats(), "", "  ")
				fmt.Fprintf(os.Stderr, "cache: %s\n", st)
			}
		}()
		opts = append(opts, bench.WithCache(cache))
	}
	if *timeout > 0 {
		// One deadline spans every requested table: compilation observes
		// it between stages, the simulator polls it while executing.
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts = append(opts, bench.WithContext(ctx))
	}

	if *all || *t1 {
		rows, err := bench.Table1(p, *scale, opts...)
		if err != nil {
			return fatal(err)
		}
		switch {
		case *jsonOut:
			report.Table1 = rows
		case *csv:
			fmt.Print(bench.Table1CSV(rows))
		default:
			fmt.Println(bench.Table1Text(rows))
		}
	}
	if *all || *f2 {
		rows, err := bench.Fig2(p, *scale, opts...)
		if err != nil {
			return fatal(err)
		}
		switch {
		case *jsonOut:
			report.Fig2 = rows
		case *csv:
			fmt.Print(bench.Fig2CSV(rows))
		default:
			fmt.Println(bench.Fig2Text(rows))
		}
	}
	if *all || *f3 {
		rows, err := bench.Fig3(*scale, opts...)
		if err != nil {
			return fatal(err)
		}
		switch {
		case *jsonOut:
			report.Fig3 = rows
		case *csv:
			fmt.Print(bench.Fig3CSV(rows))
		default:
			fmt.Println(bench.Fig3Text(rows))
		}
	}
	if *all || *f4 {
		rows, err := bench.Fig4(*scale, opts...)
		if err != nil {
			return fatal(err)
		}
		switch {
		case *jsonOut:
			report.Fig4 = rows
		case *csv:
			fmt.Print(bench.Fig4CSV(rows))
		default:
			fmt.Println(bench.Fig4Text(rows))
		}
	}
	if *all || *t2 {
		rows, err := bench.Table2(p, opts...)
		if err != nil {
			return fatal(err)
		}
		switch {
		case *jsonOut:
			report.Table2 = rows
		case *csv:
			fmt.Print(bench.Table2CSV(rows))
		default:
			fmt.Println(bench.Table2Text(rows))
		}
	}
	if *all || *t3 {
		rows, err := bench.Table3(p, opts...)
		if err != nil {
			return fatal(err)
		}
		switch {
		case *jsonOut:
			report.Table3 = rows
		case *csv:
			fmt.Print(bench.Table3CSV(rows))
		default:
			fmt.Println(bench.Table3Text(rows))
		}
	}

	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			return fatal(err)
		}
	}

	if *vmbench != "" {
		rep, err := bench.VMBench(p, *scale, *vmtime, opts...)
		if err != nil {
			return fatal(err)
		}
		if *vmbench == "-" {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return fatal(err)
			}
		} else {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return fatal(err)
			}
			if err := os.WriteFile(*vmbench, append(data, '\n'), 0o644); err != nil {
				return fatal(err)
			}
			fmt.Fprint(os.Stderr, bench.VMBenchText(rep))
		}
		if *vmgate > 0 {
			gated := false
			for _, r := range rep.Rows {
				if r.Kernel != "fir" {
					continue
				}
				gated = true
				if r.SuperinstSpeedup < *vmgate {
					return fatal(fmt.Errorf("vmgate: superinst/prepared on fir = %.2f, below gate %.2f (fused dispatch has collapsed)", r.SuperinstSpeedup, *vmgate))
				}
				// fir allocates its output, so at least one block always
				// falls back — the gate is that translation happened at
				// all and the compiled engine has not collapsed.
				if r.CompiledBlocks == 0 {
					return fatal(fmt.Errorf("vmgate: no compiled blocks on fir (translator produced nothing but fallback)"))
				}
				if r.CompiledSpeedup < *vmgate {
					return fatal(fmt.Errorf("vmgate: compiled/prepared on fir = %.2f, below gate %.2f (closure threading has collapsed)", r.CompiledSpeedup, *vmgate))
				}
			}
			if !gated {
				return fatal(fmt.Errorf("vmgate: no fir row in the vmbench report"))
			}
		}
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	return 1
}
