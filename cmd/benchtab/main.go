// Command benchtab regenerates the paper's evaluation tables and
// figures on the cycle-model ASIP:
//
//	benchtab -table1      headline speedups (the abstract's "2x-30x")
//	benchtab -table2      static code size comparison
//	benchtab -fig2        per-feature ablation (fusion / SIMD / custom instr)
//	benchtab -fig3        SIMD-width sweep
//	benchtab -all         everything
//
// Use -scale to shrink/grow problem sizes (1.0 = paper scale) and -proc
// to retarget Table I/II and Fig. 2. Output is formatted text by
// default; -csv emits CSV per table, -json emits one machine-readable
// document for all requested tables (for BENCH_*.json trend tracking).
package main

import (
	"flag"
	"fmt"
	"os"

	"mat2c/internal/bench"
	"mat2c/internal/pdesc"
)

func main() {
	var (
		t1      = flag.Bool("table1", false, "print Table I (headline speedups)")
		t2      = flag.Bool("table2", false, "print Table II (code size)")
		t3      = flag.Bool("table3", false, "print Table III (compiler activity, extension)")
		f2      = flag.Bool("fig2", false, "print Figure 2 (feature ablation)")
		f3      = flag.Bool("fig3", false, "print Figure 3 (SIMD width sweep)")
		f4      = flag.Bool("fig4", false, "print Figure 4 (memory-cost sensitivity, extension)")
		all     = flag.Bool("all", false, "print everything")
		scale   = flag.Float64("scale", 1.0, "problem size multiplier (1.0 = paper scale)")
		proc    = flag.String("proc", "dspasip", "target for Table I/II and Fig. 2")
		csv     = flag.Bool("csv", false, "emit CSV instead of formatted tables")
		jsonOut = flag.Bool("json", false, "emit one JSON report for the requested tables")
	)
	flag.Parse()
	if !*t1 && !*t2 && !*t3 && !*f2 && !*f3 && !*f4 && !*all {
		*all = true
	}
	if *csv && *jsonOut {
		fatal(fmt.Errorf("-csv and -json are mutually exclusive"))
	}
	p, err := pdesc.Resolve(*proc)
	if err != nil {
		fatal(err)
	}
	report := &bench.Report{Proc: p.Name, Scale: *scale}

	if *all || *t1 {
		rows, err := bench.Table1(p, *scale)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			report.Table1 = rows
		case *csv:
			fmt.Print(bench.Table1CSV(rows))
		default:
			fmt.Println(bench.Table1Text(rows))
		}
	}
	if *all || *f2 {
		rows, err := bench.Fig2(p, *scale)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			report.Fig2 = rows
		case *csv:
			fmt.Print(bench.Fig2CSV(rows))
		default:
			fmt.Println(bench.Fig2Text(rows))
		}
	}
	if *all || *f3 {
		rows, err := bench.Fig3(*scale)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			report.Fig3 = rows
		case *csv:
			fmt.Print(bench.Fig3CSV(rows))
		default:
			fmt.Println(bench.Fig3Text(rows))
		}
	}
	if *all || *f4 {
		rows, err := bench.Fig4(*scale)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			report.Fig4 = rows
		case *csv:
			fmt.Print(bench.Fig4CSV(rows))
		default:
			fmt.Println(bench.Fig4Text(rows))
		}
	}
	if *all || *t2 {
		rows, err := bench.Table2(p)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			report.Table2 = rows
		case *csv:
			fmt.Print(bench.Table2CSV(rows))
		default:
			fmt.Println(bench.Table2Text(rows))
		}
	}
	if *all || *t3 {
		rows, err := bench.Table3(p)
		if err != nil {
			fatal(err)
		}
		switch {
		case *jsonOut:
			report.Table3 = rows
		case *csv:
			fmt.Print(bench.Table3CSV(rows))
		default:
			fmt.Println(bench.Table3Text(rows))
		}
	}

	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
