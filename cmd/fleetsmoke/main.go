// Command fleetsmoke is the fleet integration smoke test CI runs: it
// builds mat2cd, boots one coordinator, two workers, and one
// single-process daemon, submits the same small sweep over the scalar
// base target to the coordinator and to the single daemon, and fails
// unless the sharded-and-merged report is byte-identical to the
// single-process one (elapsed wall time excepted). The two reports are
// written to -out for artifact upload.
//
// Three more phases then exercise the durable and fleet-shared cache
// tiers end to end:
//
//   - warm start: two sequential daemons share one -cachedir; the
//     second must restore everything from disk with zero compiles.
//   - shared remote: a coordinator serves its store at /artifact; a
//     worker compiles a sweep cold, is replaced by a fresh worker that
//     never compiled anything, and that worker must serve the same
//     sweep from remote hits alone — zero compiles, byte-identical
//     report.
//   - remote outage: a consumer daemon runs sweeps against a cache
//     origin that is hard-killed mid-sweep; every request must still
//     succeed (degrading to recompiles), with the outage visible only
//     in the cache counters.
//
// Usage:
//
//	fleetsmoke [-bin path/to/mat2cd] [-out dir] [-timeout 5m] [-racebuild]
//
// With no -bin, the tool builds mat2cd from the enclosing module
// (run it from the repository root, as CI does); -racebuild builds it
// with the race detector so the daemons themselves run race-checked.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

func main() {
	var (
		bin     = flag.String("bin", "", "mat2cd binary (default: go build ./cmd/mat2cd)")
		out     = flag.String("out", "fleetsmoke-out", "artifact directory for the two reports")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall deadline")
		race    = flag.Bool("racebuild", false, "build mat2cd with -race so the daemons run race-checked")
	)
	flag.Parse()
	raceBuild = *race

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin, *out); err != nil {
		log.Fatalf("fleetsmoke: FAIL: %v", err)
	}
	log.Printf("fleetsmoke: PASS: sharded report is byte-identical to single-process report")
	if err := warmStart(ctx, *bin, *out); err != nil {
		log.Fatalf("fleetsmoke: FAIL: warm start: %v", err)
	}
	log.Printf("fleetsmoke: PASS: warm restart restored every artifact from disk with zero compiles")
	if err := sharedRemote(ctx, *bin, *out); err != nil {
		log.Fatalf("fleetsmoke: FAIL: shared remote: %v", err)
	}
	log.Printf("fleetsmoke: PASS: fresh worker served the sweep from the shared remote cache with zero compiles")
	if err := remoteOutage(ctx, *bin, *out); err != nil {
		log.Fatalf("fleetsmoke: FAIL: remote outage: %v", err)
	}
	log.Printf("fleetsmoke: PASS: cache-origin outage degraded to recompiles with zero request failures")
}

// raceBuild is set from -racebuild before any phase runs.
var raceBuild bool

func run(ctx context.Context, bin, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if bin == "" {
		built := filepath.Join(outDir, "mat2cd")
		args := []string{"build"}
		if raceBuild {
			args = append(args, "-race")
		}
		args = append(args, "-o", built, "./cmd/mat2cd")
		cmd := exec.CommandContext(ctx, "go", args...)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("build mat2cd: %w", err)
		}
		bin = built
	}

	ports, err := freePorts(4)
	if err != nil {
		return err
	}
	coordURL := fmt.Sprintf("http://127.0.0.1:%d", ports[0])
	singleURL := fmt.Sprintf("http://127.0.0.1:%d", ports[3])

	procs := []*daemon{
		{name: "coordinator", args: []string{"-coordinator", "-addr", fmt.Sprintf("127.0.0.1:%d", ports[0])}},
		{name: "worker1", args: workerArgs(ports[1], coordURL)},
		{name: "worker2", args: workerArgs(ports[2], coordURL)},
		{name: "single", args: []string{"-addr", fmt.Sprintf("127.0.0.1:%d", ports[3])}},
	}
	for _, d := range procs {
		if err := d.start(ctx, bin); err != nil {
			return err
		}
		defer d.stop()
	}

	// Fleet readiness: both workers registered and alive.
	if err := poll(ctx, 30*time.Second, func() error {
		var st struct {
			Coordinator struct {
				Alive int `json:"workers_alive"`
			} `json:"coordinator"`
		}
		if err := getJSON(ctx, coordURL+"/fleet", &st); err != nil {
			return err
		}
		if st.Coordinator.Alive < 2 {
			return fmt.Errorf("%d of 2 workers alive", st.Coordinator.Alive)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("fleet never became ready: %w", err)
	}
	log.Printf("fleetsmoke: coordinator reports 2 alive workers")

	// The same sweep, submitted to both daemons. Jobs is explicit so the
	// reports' jobs field cannot drift with the hosts' core counts.
	sweep := smokeSweep()
	sharded, err := runSweep(ctx, coordURL, sweep)
	if err != nil {
		return fmt.Errorf("sharded sweep: %w", err)
	}
	single, err := runSweep(ctx, singleURL, sweep)
	if err != nil {
		return fmt.Errorf("single-process sweep: %w", err)
	}

	shardedJSON, err := normalize(sharded)
	if err != nil {
		return err
	}
	singleJSON, err := normalize(single)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "report-sharded.json"), shardedJSON, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "report-single.json"), singleJSON, 0o644); err != nil {
		return err
	}

	if !bytes.Equal(shardedJSON, singleJSON) {
		return fmt.Errorf("sharded report differs from single-process report (see %s)", outDir)
	}

	// The job-listing endpoint knows the finished sweep.
	var list struct {
		Jobs []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"jobs"`
	}
	if err := getJSON(ctx, coordURL+"/dse", &list); err != nil {
		return err
	}
	if len(list.Jobs) != 1 || list.Jobs[0].State != "done" {
		return fmt.Errorf("GET /dse: want one done job, got %+v", list.Jobs)
	}

	// The fleet actually did the work: units dispatched and completed.
	var st struct {
		Coordinator struct {
			Dispatched uint64 `json:"units_dispatched"`
			Completed  uint64 `json:"units_completed"`
		} `json:"coordinator"`
	}
	if err := getJSON(ctx, coordURL+"/fleet", &st); err != nil {
		return err
	}
	if st.Coordinator.Completed == 0 {
		return fmt.Errorf("GET /fleet: no units completed (dispatched %d)", st.Coordinator.Dispatched)
	}
	log.Printf("fleetsmoke: %d units dispatched, %d completed", st.Coordinator.Dispatched, st.Coordinator.Completed)
	return nil
}

// smokeSweep is the POST /dse body every phase submits. Jobs is
// explicit so the reports' jobs field cannot drift with the hosts' core
// counts.
func smokeSweep() map[string]interface{} {
	return map[string]interface{}{
		"sweep": map[string]interface{}{
			"base":    "scalar",
			"widths":  []int{1, 2, 4},
			"complex": []bool{false, true},
		},
		"jobs":    2,
		"scale":   0.05,
		"kernels": []string{"fir", "cfir"},
	}
}

// warmStart exercises the durable artifact store across process
// restarts: two sequential single-process daemons share one -cachedir;
// the first compiles the sweep cold, the second must restore every
// artifact from disk (zero compiles, disk hits observed) and reproduce
// the report byte-for-byte once timing and cache-traffic fields are
// stripped.
func warmStart(ctx context.Context, bin, outDir string) error {
	if bin == "" {
		bin = filepath.Join(outDir, "mat2cd") // built by run()
	}
	cacheDir := filepath.Join(outDir, "artifact-store")
	ports, err := freePorts(2)
	if err != nil {
		return err
	}

	type cacheMetrics struct {
		Compiles     uint64 `json:"compiles"`
		DiskHits     uint64 `json:"disk_hits"`
		DecodeErrors uint64 `json:"disk_decode_errors"`
	}
	var reports [2][]byte
	var stats [2]cacheMetrics
	for i, name := range []string{"cold", "warm"} {
		err := func() error {
			url := fmt.Sprintf("http://127.0.0.1:%d", ports[i])
			d := &daemon{name: name, args: []string{
				"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
				"-cachedir", cacheDir,
			}}
			if err := d.start(ctx, bin); err != nil {
				return err
			}
			defer d.stop() // graceful: drains the store write-through queue
			if err := poll(ctx, 30*time.Second, func() error {
				return getJSON(ctx, url+"/metrics", &struct{}{})
			}); err != nil {
				return fmt.Errorf("%s daemon never became ready: %w", name, err)
			}
			report, err := runSweep(ctx, url, smokeSweep())
			if err != nil {
				return fmt.Errorf("%s sweep: %w", name, err)
			}
			var ms struct {
				Cache cacheMetrics `json:"cache"`
			}
			if err := getJSON(ctx, url+"/metrics", &ms); err != nil {
				return err
			}
			stats[i] = ms.Cache
			reports[i], err = normalizeWarm(report)
			if err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(outDir, "report-"+name+".json"), reports[i], 0o644)
		}()
		if err != nil {
			return err
		}
	}

	cold, warm := stats[0], stats[1]
	if cold.Compiles == 0 {
		return fmt.Errorf("cold run compiled nothing (metrics %+v)", cold)
	}
	if warm.Compiles != 0 {
		return fmt.Errorf("warm run compiled %d times, want 0 (store not consulted)", warm.Compiles)
	}
	if warm.DiskHits == 0 {
		return fmt.Errorf("warm run restored nothing from disk (metrics %+v)", warm)
	}
	if warm.DecodeErrors != 0 {
		return fmt.Errorf("warm run hit %d decode errors", warm.DecodeErrors)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		return fmt.Errorf("warm report differs from cold report (see %s)", outDir)
	}
	log.Printf("fleetsmoke: warm start: cold compiled %d, warm restored %d from disk", cold.Compiles, warm.DiskHits)
	return nil
}

// remoteCacheMetrics is the slice of /metrics cache counters the shared
// cache phases assert on.
type remoteCacheMetrics struct {
	Compiles           uint64 `json:"compiles"`
	DiskHits           uint64 `json:"disk_hits"`
	RemoteHits         uint64 `json:"remote_hits"`
	RemoteMisses       uint64 `json:"remote_misses"`
	RemoteDecodeErrors uint64 `json:"remote_decode_errors"`
	RemoteStoreErrors  uint64 `json:"remote_store_errors"`
}

func cacheMetricsOf(ctx context.Context, url string) (remoteCacheMetrics, error) {
	var ms struct {
		Cache remoteCacheMetrics `json:"cache"`
	}
	err := getJSON(ctx, url+"/metrics", &ms)
	return ms.Cache, err
}

// sharedRemote is the fleet warm-start acceptance phase: a coordinator
// serving its artifact store at /artifact, one worker that compiles a
// sweep cold (pushing every artifact to the origin), then a FRESH
// worker — empty memory, no disk store, never compiled anything — that
// must serve the identical sweep purely from remote hits: zero
// compiles, byte-identical report.
func sharedRemote(ctx context.Context, bin, outDir string) error {
	if bin == "" {
		bin = filepath.Join(outDir, "mat2cd") // built by run()
	}
	ports, err := freePorts(3)
	if err != nil {
		return err
	}
	coordURL := fmt.Sprintf("http://127.0.0.1:%d", ports[0])

	coord := &daemon{name: "origin-coordinator", args: []string{
		"-coordinator",
		"-addr", fmt.Sprintf("127.0.0.1:%d", ports[0]),
		"-cachedir", filepath.Join(outDir, "shared-store"),
		"-artifactserve",
	}}
	if err := coord.start(ctx, bin); err != nil {
		return err
	}
	defer coord.stop()

	waitWorkers := func(n int) error {
		return poll(ctx, 30*time.Second, func() error {
			var st struct {
				Coordinator struct {
					Alive int `json:"workers_alive"`
				} `json:"coordinator"`
			}
			if err := getJSON(ctx, coordURL+"/fleet", &st); err != nil {
				return err
			}
			if st.Coordinator.Alive < n {
				return fmt.Errorf("%d of %d workers alive", st.Coordinator.Alive, n)
			}
			return nil
		})
	}

	// Worker A compiles the sweep cold; registration auto-attaches the
	// coordinator's advertised /artifact endpoint as its remote tier.
	workerA := &daemon{name: "workerA", args: workerArgs(ports[1], coordURL)}
	if err := workerA.start(ctx, bin); err != nil {
		return err
	}
	stopA := true
	defer func() {
		if stopA {
			workerA.stop()
		}
	}()
	if err := waitWorkers(1); err != nil {
		return fmt.Errorf("worker A never registered: %w", err)
	}
	coldReport, err := runSweep(ctx, coordURL, smokeSweep())
	if err != nil {
		return fmt.Errorf("cold sweep: %w", err)
	}
	coldStats, err := cacheMetricsOf(ctx, fmt.Sprintf("http://127.0.0.1:%d", ports[1]))
	if err != nil {
		return err
	}
	if coldStats.Compiles == 0 {
		return fmt.Errorf("worker A compiled nothing (metrics %+v)", coldStats)
	}

	// Every compile must reach the origin before worker B starts; the
	// worker's write-throughs are asynchronous, so poll the origin's
	// entry count (the blob stats document at GET /artifact).
	if err := poll(ctx, 30*time.Second, func() error {
		var st struct {
			Entries int `json:"entries"`
		}
		if err := getJSON(ctx, coordURL+"/artifact", &st); err != nil {
			return err
		}
		if uint64(st.Entries) < coldStats.Compiles {
			return fmt.Errorf("origin holds %d of %d artifacts", st.Entries, coldStats.Compiles)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("worker A's artifacts never reached the origin: %w", err)
	}
	workerA.stop()
	stopA = false

	// Worker B: brand new process, nothing local. The same sweep must
	// be served entirely by the shared remote.
	workerB := &daemon{name: "workerB", args: workerArgs(ports[2], coordURL)}
	if err := workerB.start(ctx, bin); err != nil {
		return err
	}
	defer workerB.stop()
	if err := waitWorkers(1); err != nil {
		return fmt.Errorf("worker B never registered: %w", err)
	}
	warmReport, err := runSweep(ctx, coordURL, smokeSweep())
	if err != nil {
		return fmt.Errorf("warm sweep: %w", err)
	}
	warmStats, err := cacheMetricsOf(ctx, fmt.Sprintf("http://127.0.0.1:%d", ports[2]))
	if err != nil {
		return err
	}
	if warmStats.Compiles != 0 {
		return fmt.Errorf("worker B compiled %d times, want 0 (remote not consulted; metrics %+v)", warmStats.Compiles, warmStats)
	}
	if warmStats.RemoteHits == 0 {
		return fmt.Errorf("worker B restored nothing from the remote (metrics %+v)", warmStats)
	}
	if warmStats.RemoteDecodeErrors != 0 {
		return fmt.Errorf("worker B hit %d remote decode errors", warmStats.RemoteDecodeErrors)
	}

	coldJSON, err := normalizeWarm(coldReport)
	if err != nil {
		return err
	}
	warmJSON, err := normalizeWarm(warmReport)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "report-remote-cold.json"), coldJSON, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "report-remote-warm.json"), warmJSON, 0o644); err != nil {
		return err
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		return fmt.Errorf("remote-served report differs from compiled report (see %s)", outDir)
	}
	log.Printf("fleetsmoke: shared remote: worker A compiled %d, worker B served %d remote hits with 0 compiles",
		coldStats.Compiles, warmStats.RemoteHits)
	return nil
}

// remoteOutage proves a dying cache origin can never fail a request: a
// consumer daemon sweeps against an origin that is hard-killed
// (SIGKILL, no drain) mid-sweep, then sweeps fresh work with the origin
// still dead. Both jobs must complete with every variant present; the
// outage shows up only in the remote miss/store-error counters.
func remoteOutage(ctx context.Context, bin, outDir string) error {
	if bin == "" {
		bin = filepath.Join(outDir, "mat2cd") // built by run()
	}
	ports, err := freePorts(2)
	if err != nil {
		return err
	}
	originURL := fmt.Sprintf("http://127.0.0.1:%d", ports[0])
	consumerURL := fmt.Sprintf("http://127.0.0.1:%d", ports[1])

	// The origin is a plain daemon serving its store; pre-warm it by
	// running the sweep on it directly.
	origin := &daemon{name: "origin", args: []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", ports[0]),
		"-cachedir", filepath.Join(outDir, "outage-store"),
		"-artifactserve",
	}}
	if err := origin.start(ctx, bin); err != nil {
		return err
	}
	killed := false
	defer func() {
		if !killed {
			origin.stop()
		}
	}()
	if err := poll(ctx, 30*time.Second, func() error {
		return getJSON(ctx, originURL+"/metrics", &struct{}{})
	}); err != nil {
		return fmt.Errorf("origin never became ready: %w", err)
	}
	originReport, err := runSweep(ctx, originURL, smokeSweep())
	if err != nil {
		return fmt.Errorf("origin pre-warm sweep: %w", err)
	}

	consumer := &daemon{name: "consumer", args: []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", ports[1]),
		"-artifactremote", originURL + "/artifact",
	}}
	if err := consumer.start(ctx, bin); err != nil {
		return err
	}
	defer consumer.stop()
	if err := poll(ctx, 30*time.Second, func() error {
		return getJSON(ctx, consumerURL+"/metrics", &struct{}{})
	}); err != nil {
		return fmt.Errorf("consumer never became ready: %w", err)
	}

	// Submit the pre-warmed sweep and hard-kill the origin while it may
	// still be streaming artifacts: whatever was fetched before the kill
	// is a remote hit, everything after degrades to a recompile — and
	// either way the job must finish with the identical report.
	type sweepResult struct {
		report json.RawMessage
		err    error
	}
	resc := make(chan sweepResult, 1)
	go func() {
		rep, err := runSweep(ctx, consumerURL, smokeSweep())
		resc <- sweepResult{rep, err}
	}()
	time.Sleep(150 * time.Millisecond)
	origin.kill()
	killed = true
	res := <-resc
	if res.err != nil {
		return fmt.Errorf("sweep across origin kill failed: %w", res.err)
	}

	originJSON, err := normalizeWarm(originReport)
	if err != nil {
		return err
	}
	outageJSON, err := normalizeWarm(res.report)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "report-outage.json"), outageJSON, 0o644); err != nil {
		return err
	}
	if !bytes.Equal(originJSON, outageJSON) {
		return fmt.Errorf("outage report differs from origin report (see %s)", outDir)
	}

	// Fresh work with the origin dead: forced compiles, still no
	// failures. A wider SIMD variant changes every cache key.
	deadSweep := smokeSweep()
	deadSweep["sweep"] = map[string]interface{}{
		"base":    "scalar",
		"widths":  []int{8},
		"complex": []bool{false},
	}
	deadSweep["kernels"] = []string{"fir"}
	if _, err := runSweep(ctx, consumerURL, deadSweep); err != nil {
		return fmt.Errorf("sweep against dead origin failed: %w", err)
	}
	st, err := cacheMetricsOf(ctx, consumerURL)
	if err != nil {
		return err
	}
	if st.Compiles == 0 {
		return fmt.Errorf("dead-origin sweep compiled nothing (metrics %+v)", st)
	}
	if st.RemoteDecodeErrors != 0 {
		return fmt.Errorf("outage produced %d remote decode errors, want 0 (outage must look like misses)", st.RemoteDecodeErrors)
	}
	if st.RemoteMisses == 0 && st.RemoteStoreErrors == 0 {
		return fmt.Errorf("outage left no trace in the remote counters (metrics %+v)", st)
	}
	log.Printf("fleetsmoke: outage: consumer compiled %d with the origin dead (%d remote misses, %d store errors), zero failures",
		st.Compiles, st.RemoteMisses, st.RemoteStoreErrors)
	return nil
}

// normalizeWarm is normalize plus the cache-traffic counters, which
// legitimately differ between a cold and a warm run.
func normalizeWarm(report json.RawMessage) ([]byte, error) {
	var m map[string]interface{}
	if err := json.Unmarshal(report, &m); err != nil {
		return nil, fmt.Errorf("decode report: %w", err)
	}
	m["elapsed_us"] = 0
	m["cache_lookups"] = 0
	m["cache_hits"] = 0
	if vs, ok := m["variants"].([]interface{}); ok {
		for _, v := range vs {
			if vm, ok := v.(map[string]interface{}); ok {
				vm["cache_lookups"] = 0
				vm["cache_hits"] = 0
			}
		}
	}
	return json.MarshalIndent(m, "", "  ")
}

// daemon is one spawned mat2cd process.
type daemon struct {
	name string
	args []string
	cmd  *exec.Cmd
}

func (d *daemon) start(ctx context.Context, bin string) error {
	d.cmd = exec.CommandContext(ctx, bin, d.args...)
	d.cmd.Stdout, d.cmd.Stderr = os.Stderr, os.Stderr
	if err := d.cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", d.name, err)
	}
	log.Printf("fleetsmoke: started %s (pid %d): mat2cd %v", d.name, d.cmd.Process.Pid, d.args)
	return nil
}

// kill is the ungraceful stop: SIGKILL, no drain, no store flush — the
// outage phase uses it so the origin dies the way a crashed host does.
func (d *daemon) kill() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
	log.Printf("fleetsmoke: killed %s", d.name)
}

func (d *daemon) stop() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

func workerArgs(port int, coordURL string) []string {
	self := fmt.Sprintf("http://127.0.0.1:%d", port)
	return []string{
		"-worker", coordURL,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-advertise", self,
	}
}

// freePorts reserves n distinct ephemeral ports and releases them for
// the daemons to bind. The window between release and rebind is racy
// in principle; in the CI container it is not contended.
func freePorts(n int) ([]int, error) {
	var ports []int
	var listeners []net.Listener
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// runSweep submits one POST /dse and polls the job to completion,
// returning the raw report JSON.
func runSweep(ctx context.Context, baseURL string, req interface{}) (json.RawMessage, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/dse", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	var acc struct {
		ID     string `json:"id"`
		Status string `json:"status_url"`
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("POST /dse: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if err := json.Unmarshal(data, &acc); err != nil {
		return nil, err
	}

	var report json.RawMessage
	err = poll(ctx, 4*time.Minute, func() error {
		var st struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Report json.RawMessage `json:"report"`
		}
		if err := getJSON(ctx, baseURL+acc.Status, &st); err != nil {
			return err
		}
		switch st.State {
		case "done":
			report = st.Report
			return nil
		case "failed", "cancelled":
			return fmt.Errorf("job %s %s: %s", acc.ID, st.State, st.Error)
		default:
			return fmt.Errorf("job %s still %s", acc.ID, st.State)
		}
	})
	return report, err
}

// normalize re-marshals a report with its wall-time field zeroed —
// the only field legitimately differing between the two modes.
func normalize(report json.RawMessage) ([]byte, error) {
	var m map[string]interface{}
	if err := json.Unmarshal(report, &m); err != nil {
		return nil, fmt.Errorf("decode report: %w", err)
	}
	m["elapsed_us"] = 0
	return json.MarshalIndent(m, "", "  ")
}

func poll(ctx context.Context, within time.Duration, fn func() error) error {
	deadline := time.Now().Add(within)
	var last error
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if last = fn(); last == nil {
			return nil
		}
		select {
		case <-ctx.Done():
		case <-time.After(250 * time.Millisecond):
		}
	}
	if last == nil {
		last = ctx.Err()
	}
	return last
}

func getJSON(ctx context.Context, url string, v interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, v)
}
