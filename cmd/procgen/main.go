// Command procgen regenerates the shipped processor descriptions in
// procs/ from the built-in target catalog. Run it after editing the
// catalog so the JSON files stay in sync (a pdesc test checks this).
package main

import (
	"fmt"
	"os"

	"mat2c/internal/pdesc"
)

func main() {
	for _, name := range pdesc.BuiltinNames() {
		p := pdesc.Builtin(name)
		data, err := p.MarshalJSONIndent()
		if err != nil {
			fmt.Fprintln(os.Stderr, "procgen:", err)
			os.Exit(1)
		}
		path := "procs/" + name + ".json"
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "procgen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
