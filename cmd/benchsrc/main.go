// Command benchsrc regenerates benchmarks/*.m from the embedded kernel
// sources in internal/bench (a test keeps them in sync). The files are
// the exact MATLAB programs the evaluation compiles; use them with
// cmd/mat2c or cmd/asipsim directly.
package main

import (
	"fmt"
	"os"

	"mat2c/internal/bench"
)

func main() {
	for _, k := range bench.Kernels() {
		path := "benchmarks/" + k.Name + ".m"
		src := "% " + k.Desc + "\n% Benchmark kernel of the mat2c evaluation (see EXPERIMENTS.md).\n" + k.Source + "\n"
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsrc:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
