// Command asipdse runs design-space exploration over generated
// processor variants: it enumerates candidates from a sweep
// specification, compiles and simulates the benchmark kernel suite
// against each one on a worker pool, and reports the Pareto frontier
// over (total cycles, instruction-set cost).
//
//	asipdse                                sweep the default axes over dspasip
//	asipdse -procs dspasip,wide8           sweep multiple bases, one merged frontier
//	asipdse -sweep sweep.json              load the axes from a JSON spec
//	asipdse -kernels fir,cfir -scale 0.1   restrict the suite / shrink sizes
//	asipdse -jobs 4 -json                  bound the pool, emit the JSON report
//	asipdse -isx -isx-top 2                seed the sweep with mined extensions
//	asipdse -cachedir .mat2c-cache         persist compiled artifacts across runs
//	asipdse -cpuprofile dse.pprof          profile the exploration
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	mat2c "mat2c"
	"mat2c/internal/artifact"
	"mat2c/internal/artifact/remote"
	"mat2c/internal/dse"
	"mat2c/internal/profile"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		procs   = flag.String("procs", "", "comma-separated base targets to sweep (default: the sweep spec's base, or dspasip)")
		sweep   = flag.String("sweep", "", "JSON sweep specification file (default: built-in axes)")
		jobs    = flag.Int("jobs", 0, "worker pool size (default: GOMAXPROCS)")
		scale   = flag.Float64("scale", 0.25, "problem size multiplier for the kernel suite")
		kernels = flag.String("kernels", "", "comma-separated kernel subset (default: full suite)")
		jsonOut = flag.Bool("json", false, "emit the machine-readable JSON report")
		csvOut  = flag.Bool("csv", false, "emit one CSV row per variant")
		isxSeed = flag.Bool("isx", false, "seed the sweep with mined instruction-set extensions (see isxmine)")
		isxTop  = flag.Int("isx-top", 0, "how many mined candidates seed the sweep (default 3; implies -isx)")
		isxMax  = flag.Int("isx-maxnodes", 0, "mined pattern size bound (default 4; implies -isx)")
		cacheDir   = flag.String("cachedir", "", "durable artifact store directory: compiled artifacts persist there and warm later runs")
		cacheBytes = flag.Int64("cachebytes", 0, "artifact store byte budget (0 = default 512 MiB; needs -cachedir)")
		cacheStats = flag.Bool("cachestats", false, "print cache-tier statistics to stderr after the run")
		artRemote  = flag.String("artifactremote", "", "blob-protocol `URL` of a fleet-shared artifact cache (e.g. http://coordinator:8723/artifact)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *jsonOut && *csvOut {
		return fatal(fmt.Errorf("-json and -csv are mutually exclusive"))
	}
	stop, err := profile.Start(*cpuProf, *memProf)
	if err != nil {
		return fatal(err)
	}
	defer stop()

	base := &dse.Sweep{}
	if *sweep != "" {
		base, err = dse.LoadSweep(*sweep)
		if err != nil {
			return fatal(err)
		}
	}
	if *isxSeed || *isxTop > 0 || *isxMax > 0 {
		if base.ISX == nil {
			base.ISX = &dse.ISXSeed{}
		}
		if *isxTop > 0 {
			base.ISX.Top = *isxTop
		}
		if *isxMax > 0 {
			base.ISX.MaxNodes = *isxMax
		}
	}
	var sweeps []*dse.Sweep
	if *procs != "" {
		for _, p := range strings.Split(*procs, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			sw := *base
			sw.Base = p
			sweeps = append(sweeps, &sw)
		}
	}
	if len(sweeps) == 0 {
		sweeps = []*dse.Sweep{base}
	}

	opts := dse.Options{Jobs: *jobs, Scale: *scale}
	if *kernels != "" {
		for _, k := range strings.Split(*kernels, ",") {
			if k = strings.TrimSpace(k); k != "" {
				opts.Kernels = append(opts.Kernels, k)
			}
		}
	}
	var cache *mat2c.Cache
	if *cacheDir != "" || *artRemote != "" || *cacheStats {
		cache = mat2c.NewCache(0)
		opts.Cache = cache
	}
	if *cacheDir != "" {
		store, err := artifact.OpenDisk(*cacheDir, *cacheBytes)
		if err != nil {
			return fatal(err)
		}
		cache.SetStore(store)
	}
	if *artRemote != "" {
		cache.SetRemoteStore(remote.New(*artRemote, remote.Options{}))
	}

	rep, err := dse.Explore(sweeps, opts)
	if cache != nil {
		// Wait for asynchronous store write-throughs so the run's
		// artifacts are durable before the process exits.
		cache.Flush()
		if *cacheStats {
			st, _ := json.MarshalIndent(cache.Stats(), "", "  ")
			fmt.Fprintf(os.Stderr, "cache: %s\n", st)
		}
	}
	if err != nil {
		return fatal(err)
	}
	switch {
	case *jsonOut:
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return fatal(err)
		}
	case *csvOut:
		fmt.Print(rep.CSV())
	default:
		fmt.Print(rep.Text())
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "asipdse:", err)
	return 1
}
