// Command mat2cd is the mat2c compile-and-simulate daemon: a long-lived
// HTTP/JSON service wrapping the compiler pipeline with a
// content-addressed compilation cache, a bounded worker pool, and
// per-stage metrics.
//
// Usage:
//
//	mat2cd [-addr :8723] [-workers N] [-cache 256] [-timeout 30s]
//	mat2cd -coordinator [-unitsize 4] [-cachedir DIR -artifactserve] ...
//	mat2cd -worker http://coordinator:8723 [-advertise URL] [-sweepslots N] ...
//
// With -cachedir the compilation cache is backed by a durable artifact
// store; -artifactserve additionally exposes that store at /artifact
// (the blob protocol in internal/artifact/remote) so the daemon doubles
// as a fleet's shared cache origin. -artifactremote URL attaches such
// an origin as a third cache tier; a -worker without it adopts the
// endpoint its coordinator advertises at registration. A remote outage
// degrades to local operation — it never fails a request.
//
// Endpoints (see docs/SERVER.md for schemas):
//
//	POST /compile   compile MATLAB source to C + stats
//	POST /run       compile and execute on the cycle-model simulator
//	GET  /targets   list built-in processor descriptions
//	GET  /healthz   liveness probe
//	GET  /metrics   JSON metrics (requests, cache, stage histograms)
//	GET  /fleet     fleet role, worker health, queue depth
//
// In a sweep fleet (docs/FLEET.md), -coordinator accepts /dse and /isx
// jobs as usual but shards them across registered workers, and
// -worker enrolls this daemon with a coordinator and executes the
// dispatched work units on a bounded sweep queue.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, cancels
// background DSE sweeps, and drains in-flight requests; work still
// running when -draintimeout expires is cancelled through its request
// context (the pipeline observes the cancellation and aborts) before
// the listener is closed. A worker deregisters from its coordinator
// before the drain so no new units land on it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"mat2c/internal/artifact"
	"mat2c/internal/artifact/remote"
	"mat2c/internal/fleet"
	"mat2c/internal/service"
	"mat2c/internal/vm"
)

func main() {
	var (
		addr         = flag.String("addr", ":8723", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent compilations (0 = NumCPU)")
		cacheSize    = flag.Int("cache", 0, "compilation cache entries (0 = default)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		drainTimeout = flag.Duration("draintimeout", 15*time.Second, "graceful shutdown drain bound")
		cacheDir     = flag.String("cachedir", "", "durable artifact store directory backing the compilation cache (empty = memory only)")
		cacheBytes   = flag.Int64("cachebytes", 0, "artifact store byte budget (0 = default 512 MiB; needs -cachedir)")
		artServe     = flag.Bool("artifactserve", false, "serve the artifact store over HTTP at /artifact so this daemon is the fleet's shared cache origin (needs -cachedir)")
		artRemote    = flag.String("artifactremote", "", "blob-protocol `URL` of a fleet-shared artifact cache (e.g. http://coordinator:8723/artifact); workers default to the endpoint their coordinator advertises")

		coordinator = flag.Bool("coordinator", false, "run as fleet coordinator: shard /dse and /isx jobs across registered workers")
		workerOf    = flag.String("worker", "", "run as fleet worker of the coordinator at this base `URL`")
		advertise   = flag.String("advertise", "", "base URL workers advertise to the coordinator (default http://127.0.0.1<addr> when -addr is :port)")
		sweepSlots  = flag.Int("sweepslots", 0, "concurrent fleet work units on a worker (0 = workers/2)")
		unitSize    = flag.Int("unitsize", 0, "variants per dispatched DSE work unit (0 = default)")
		superOpt    = flag.String("superinst", "", "superinstruction fusion in the prepared engine: on or off (default: on, or MAT2C_VM_SUPERINST)")
		engine      = flag.String("engine", "", "VM execution engine: reference, prepared or compiled (default: prepared, or MAT2C_VM_ENGINE)")
	)
	flag.Parse()
	switch *superOpt {
	case "":
	case "on":
		vm.SetSuperinstEnabled(true)
	case "off":
		vm.SetSuperinstEnabled(false)
	default:
		fmt.Fprintf(os.Stderr, "mat2cd: -superinst: %q (want on or off)\n", *superOpt)
		os.Exit(2)
	}
	if *engine != "" {
		if err := vm.SetDefaultEngine(*engine); err != nil {
			fmt.Fprintf(os.Stderr, "mat2cd: -engine: %v\n", err)
			os.Exit(2)
		}
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: mat2cd [flags]  (see mat2cd -h)")
		os.Exit(2)
	}
	if *coordinator && *workerOf != "" {
		fmt.Fprintln(os.Stderr, "mat2cd: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	}

	cfg := service.Config{
		Workers:        *workers,
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		SweepSlots:     *sweepSlots,
	}
	if *cacheDir != "" {
		store, err := artifact.OpenDisk(*cacheDir, *cacheBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mat2cd:", err)
			os.Exit(1)
		}
		cfg.Store = store
		log.Printf("mat2cd: artifact store at %s", *cacheDir)
	}
	if *artServe {
		if cfg.Store == nil {
			fmt.Fprintln(os.Stderr, "mat2cd: -artifactserve needs -cachedir (the served store)")
			os.Exit(2)
		}
		cfg.ArtifactServe = true
		log.Printf("mat2cd: serving artifacts at /artifact")
	}
	if *artRemote != "" {
		cfg.Remote = remote.New(*artRemote, remote.Options{})
		log.Printf("mat2cd: remote artifact cache at %s", *artRemote)
	}
	switch {
	case *coordinator:
		cfg.Role = service.RoleCoordinator
		cfg.Fleet = fleet.Config{UnitSize: *unitSize, Logf: log.Printf}
	case *workerOf != "":
		cfg.Role = service.RoleWorker
	}

	svc := service.New(cfg)
	// baseCtx parents every request context; cancelling it is the hard
	// stop that aborts in-flight pipeline work when the drain runs out.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A worker keeps itself registered with its coordinator for as long
	// as it runs; cancelling agentCtx (first thing on shutdown, before
	// the drain) deregisters it so no further units are dispatched here.
	agentCtx, agentCancel := context.WithCancel(context.Background())
	agentDone := make(chan struct{})
	close(agentDone)
	if *workerOf != "" {
		self := *advertise
		if self == "" {
			if !strings.HasPrefix(*addr, ":") {
				fmt.Fprintln(os.Stderr, "mat2cd: -advertise is required when -addr is not a bare :port")
				os.Exit(2)
			}
			self = "http://127.0.0.1" + *addr
		}
		agent := &fleet.Agent{
			Coordinator: strings.TrimRight(*workerOf, "/"),
			Self:        strings.TrimRight(self, "/"),
			Slots:       svc.Config().SweepSlots,
			Logf:        log.Printf,
		}
		if *artRemote == "" {
			// No explicit remote: adopt the shared cache the coordinator
			// advertises, the first time it does. Attaching mid-traffic is
			// safe — every cache store access is mutex-guarded.
			var attach sync.Once
			agent.OnArtifactURL = func(url string) {
				attach.Do(func() {
					svc.Cache().SetRemoteStore(remote.New(url, remote.Options{}))
					log.Printf("mat2cd: remote artifact cache at %s (advertised by coordinator)", url)
				})
			}
		}
		agentDone = make(chan struct{})
		go func() {
			defer close(agentDone)
			agent.Run(agentCtx)
		}()
		log.Printf("mat2cd: worker of %s, advertising %s", agent.Coordinator, agent.Self)
	}
	defer agentCancel()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("mat2cd: listening on %s (%s)", *addr, cfg.Role)

	select {
	case err := <-errc:
		log.Fatalf("mat2cd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("mat2cd: signal received, draining (up to %s)", *drainTimeout)
	// Deregister from the coordinator first so no new units arrive while
	// the drain runs.
	agentCancel()
	<-agentDone
	// Cancel background work (async DSE sweeps) immediately — nobody is
	// coming back for those reports — and, in coordinator mode, wait for
	// dispatched-but-unacked work units to settle.
	svc.Shutdown()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// The grace period expired with requests still in flight: cancel
		// their contexts so compile/simulate work aborts at its next
		// cancellation check, then close the listener.
		log.Printf("mat2cd: drain incomplete (%v), cancelling in-flight work", err)
		baseCancel()
		srv.Close()
	}
	// Flush again after the drain: svc.Shutdown flushed before it, but
	// requests that completed during the drain window spawn their own
	// asynchronous store write-throughs, and exiting without waiting
	// would strand those just-compiled artifacts.
	svc.Cache().Flush()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mat2cd: %v", err)
	}
	log.Printf("mat2cd: stopped")
}
