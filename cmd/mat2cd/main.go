// Command mat2cd is the mat2c compile-and-simulate daemon: a long-lived
// HTTP/JSON service wrapping the compiler pipeline with a
// content-addressed compilation cache, a bounded worker pool, and
// per-stage metrics.
//
// Usage:
//
//	mat2cd [-addr :8723] [-workers N] [-cache 256] [-timeout 30s]
//
// Endpoints (see docs/SERVER.md for schemas):
//
//	POST /compile   compile MATLAB source to C + stats
//	POST /run       compile and execute on the cycle-model simulator
//	GET  /targets   list built-in processor descriptions
//	GET  /healthz   liveness probe
//	GET  /metrics   JSON metrics (requests, cache, stage histograms)
//
// On SIGINT/SIGTERM the daemon stops accepting connections, cancels
// background DSE sweeps, and drains in-flight requests; work still
// running when -draintimeout expires is cancelled through its request
// context (the pipeline observes the cancellation and aborts) before
// the listener is closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mat2c/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8723", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent compilations (0 = NumCPU)")
		cacheSize    = flag.Int("cache", 0, "compilation cache entries (0 = default)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		drainTimeout = flag.Duration("draintimeout", 15*time.Second, "graceful shutdown drain bound")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: mat2cd [flags]  (see mat2cd -h)")
		os.Exit(2)
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
	})
	// baseCtx parents every request context; cancelling it is the hard
	// stop that aborts in-flight pipeline work when the drain runs out.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("mat2cd: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("mat2cd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("mat2cd: signal received, draining (up to %s)", *drainTimeout)
	// Cancel background work (async DSE sweeps) immediately: nobody is
	// coming back for those reports.
	svc.Shutdown()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// The grace period expired with requests still in flight: cancel
		// their contexts so compile/simulate work aborts at its next
		// cancellation check, then close the listener.
		log.Printf("mat2cd: drain incomplete (%v), cancelling in-flight work", err)
		baseCancel()
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mat2cd: %v", err)
	}
	log.Printf("mat2cd: stopped")
}
