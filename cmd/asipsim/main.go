// Command asipsim compiles a MATLAB function and executes it on the
// cycle-model ASIP simulator, printing results and cycle statistics.
//
// Usage:
//
//	asipsim -params 'real(1,:), real' -args '[[1,2,3,4], 2.5]' kernel.m
//
// Arguments are a JSON array with one element per parameter:
//
//	2.5                                  scalar (real or int per the type)
//	[1, 2, 3]                            real row vector
//	{"rows":2,"cols":2,"data":[1,2,3,4]} real matrix (column-major)
//	{"complex":[[1,2],[3,-1]]}           complex row vector (re,im pairs)
//
// Flags mirror the mat2c command: -proc, -entry, -baseline, -novec,
// -nointrin, plus -classes to dump per-cost-class execution counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	mat2c "mat2c"
	"mat2c/internal/service"
	"mat2c/internal/vm"
)

func main() {
	var (
		params   = flag.String("params", "", "entry parameter types")
		argsJSON = flag.String("args", "[]", "JSON argument list")
		entry    = flag.String("entry", "", "entry function name")
		proc     = flag.String("proc", "dspasip", "target processor")
		baseline = flag.Bool("baseline", false, "MATLAB-Coder-style baseline pipeline")
		novec    = flag.Bool("novec", false, "disable auto-vectorization")
		nointrin = flag.Bool("nointrin", false, "disable custom-instruction selection")
		classes  = flag.Bool("classes", false, "print per-class execution counts")
		trace    = flag.Bool("trace", false, "write an instruction trace to stderr (large!)")
		timeout  = flag.Duration("timeout", 0, "bound compile+simulate wall time (e.g. 30s; 0 = none)")
		superOpt = flag.String("superinst", "", "superinstruction fusion in the prepared engine: on or off (default: on, or MAT2C_VM_SUPERINST)")
		engine   = flag.String("engine", "", "VM execution engine: reference, prepared or compiled (default: prepared, or MAT2C_VM_ENGINE)")
	)
	flag.Parse()
	if err := applySuperinstFlag(*superOpt); err != nil {
		fatal(err)
	}
	if *engine != "" {
		if err := vm.SetDefaultEngine(*engine); err != nil {
			fatal(fmt.Errorf("-engine: %w", err))
		}
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asipsim [flags] kernel.m  (see asipsim -h)")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	types, err := mat2c.ParseTypes(*params)
	if err != nil {
		fatal(err)
	}
	p, err := mat2c.LoadProcessor(*proc)
	if err != nil {
		fatal(err)
	}
	// One deadline covers compilation and simulation: the pipeline
	// observes it between stages, the VM polls it while executing.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := mat2c.CompileContext(ctx, string(src), *entry, types, mat2c.Options{
		Processor:    p,
		Baseline:     *baseline,
		NoVectorize:  *novec,
		NoIntrinsics: *nointrin,
		SkipC:        true,
	})
	if err != nil {
		fatal(err)
	}

	args, err := service.DecodeArgs(*argsJSON, types)
	if err != nil {
		fatal(fmt.Errorf("-args: %w", err))
	}
	var out []interface{}
	var stats *mat2c.Stats
	if *trace {
		out, stats, err = res.RunTracedContext(ctx, os.Stderr, args...)
	} else {
		out, stats, err = res.RunWithStatsContext(ctx, args...)
	}
	if err != nil {
		fatal(err)
	}

	for i, v := range out {
		fmt.Printf("result %d: %s\n", i, formatValue(v))
	}
	fmt.Printf("cycles: %d\n", stats.Cycles)
	fmt.Printf("instructions: %d\n", stats.Executed)
	fmt.Printf("vectorized loops: %d\n", res.VectorizedLoops())
	if *classes {
		keys := make([]string, 0, len(stats.ClassCounts))
		for k := range stats.ClassCounts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-12s %d\n", k, stats.ClassCounts[k])
		}
	}
}

func formatValue(v interface{}) string {
	switch v := v.(type) {
	case *mat2c.Array:
		if v.C != nil {
			return fmt.Sprintf("complex %dx%d %v", v.Rows, v.Cols, v.C)
		}
		return fmt.Sprintf("%dx%d %v", v.Rows, v.Cols, v.F)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// applySuperinstFlag maps a -superinst value onto the process-wide VM
// fusion policy, leaving the $MAT2C_VM_SUPERINST default untouched when
// the flag is unset.
func applySuperinstFlag(v string) error {
	switch v {
	case "":
	case "on":
		vm.SetSuperinstEnabled(true)
	case "off":
		vm.SetSuperinstEnabled(false)
	default:
		return fmt.Errorf("-superinst: %q (want on or off)", v)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asipsim:", err)
	os.Exit(1)
}
