// Command mat2c compiles a MATLAB function to ANSI C with ASIP
// intrinsics (plus, on request, the compiler's IR or the cycle-model
// VM assembly).
//
// Usage:
//
//	mat2c -params 'real(1,:), real(1,:)' [flags] kernel.m
//
// Flags:
//
//	-params types   comma-separated entry parameter types (required
//	                unless the entry takes no parameters); see below
//	-entry name     entry function (default: first function in the file)
//	-proc target    built-in target name or processor JSON path
//	                (default dspasip)
//	-o file         write the generated C here (default: stdout)
//	-header file    also write asip_intrinsics.h here
//	-emit kind      c | ir | vm | ast  (default c)
//	-bundle dir     write a ready-to-build C project (sources, headers,
//	                Makefile) into dir instead of -o
//	-baseline       MATLAB-Coder-style pipeline (no fusion/SIMD/intrinsics)
//	-novec          disable the auto-vectorizer
//	-nointrin       disable custom-instruction selection
//	-O0             disable scalar optimizations
//	-stats          print compilation statistics to stderr
//
// Parameter types: real | int | complex | logical, optionally with a
// shape: real(1,:) row vector, real(:,:) matrix, complex(1,256) sized.
package main

import (
	"flag"
	"fmt"
	"os"

	mat2c "mat2c"
)

func main() {
	var (
		params   = flag.String("params", "", "entry parameter types, e.g. 'real(1,:), real'")
		entry    = flag.String("entry", "", "entry function name (default: first in file)")
		proc     = flag.String("proc", "dspasip", "target: built-in name or processor JSON path")
		out      = flag.String("o", "", "output file for the generated C (default stdout)")
		header   = flag.String("header", "", "also write asip_intrinsics.h to this path")
		emit     = flag.String("emit", "c", "what to emit: c | ir | vm | ast")
		baseline = flag.Bool("baseline", false, "MATLAB-Coder-style baseline pipeline")
		novec    = flag.Bool("novec", false, "disable auto-vectorization")
		nointrin = flag.Bool("nointrin", false, "disable custom-instruction selection")
		o0       = flag.Bool("O0", false, "disable scalar optimizations")
		stats    = flag.Bool("stats", false, "print compilation statistics to stderr")
		bundle   = flag.String("bundle", "", "write a ready-to-build C project (sources, headers, Makefile) into this directory")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mat2c [flags] kernel.m  (see mat2c -h)")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	types, err := mat2c.ParseTypes(*params)
	if err != nil {
		fatal(err)
	}
	p, err := mat2c.LoadProcessor(*proc)
	if err != nil {
		fatal(err)
	}
	opts := mat2c.Options{
		Processor:    p,
		Baseline:     *baseline,
		NoVectorize:  *novec,
		NoIntrinsics: *nointrin,
	}
	if *o0 {
		opts.OptLevel = -1
	}
	res, err := mat2c.Compile(string(src), *entry, types, opts)
	if err != nil {
		fatal(err)
	}

	for _, w := range res.Warnings() {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}

	var text string
	switch *emit {
	case "c":
		text = res.CSource()
	case "ir":
		text = res.IRText()
	case "vm":
		text = res.Disasm()
	case "ast":
		text = res.AST()
	default:
		fatal(fmt.Errorf("unknown -emit %q (want c, ir, vm, or ast)", *emit))
	}
	if *bundle != "" {
		if err := res.WriteBundle(*bundle); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote C project to %s\n", *bundle)
	} else if err := writeOut(*out, text); err != nil {
		fatal(err)
	}
	if *header != "" {
		if err := os.WriteFile(*header, []byte(res.CHeader()), 0o644); err != nil {
			fatal(err)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "target: %s (SIMD width %d)\n", p.Name, p.SIMDWidth)
		fmt.Fprintf(os.Stderr, "vectorized loops: %d\n", res.VectorizedLoops())
		fmt.Fprintf(os.Stderr, "static code size: %d VM instructions\n", res.CodeSize())
		if sel := res.SelectedIntrinsics(); len(sel) > 0 {
			fmt.Fprintf(os.Stderr, "custom instructions: %v\n", sel)
		} else {
			fmt.Fprintf(os.Stderr, "custom instructions: none\n")
		}
	}
}

func writeOut(path, text string) error {
	if path == "" {
		_, err := os.Stdout.WriteString(text)
		return err
	}
	return os.WriteFile(path, []byte(text), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mat2c:", err)
	os.Exit(1)
}
