// Command isxmine discovers custom-instruction candidates from
// execution profiles: it compiles the benchmark kernels for a base
// target, profiles the VM to weight every dataflow subtree by how
// often it actually executes, ranks recurring patterns by estimated
// cycle savings per unit area, and verifies each winner by recompiling
// and re-simulating on a derived processor that provides it.
//
//	isxmine                                  mine dspasip over the full suite
//	isxmine -procs scalar -kernels fir,cfir  mine a scalar base on two kernels
//	isxmine -maxnodes 3 -top 4               smaller patterns, fewer winners
//	isxmine -json > isx.json                 machine-readable report
//	isxmine -mincand 1 -tolerance 1.0        CI assertions (see below)
//
// With -mincand N the exit status is non-zero unless at least N
// verified candidates were mined per base; with -tolerance T every
// verified candidate's estimate/measured savings ratio must lie within
// [1/(1+T), 1+T].
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mat2c/internal/isx"
	"mat2c/internal/pdesc"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		procs    = flag.String("procs", "dspasip", "comma-separated base targets to mine")
		kernels  = flag.String("kernels", "", "comma-separated kernel subset (default: full suite)")
		maxNodes = flag.Int("maxnodes", 4, "operation-node bound per mined pattern")
		top      = flag.Int("top", 8, "candidates kept after ranking")
		scale    = flag.Float64("scale", 0.25, "problem size multiplier for profiling")
		noVerify = flag.Bool("noverify", false, "skip the recompile-and-measure verification")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable JSON report")
		minCand  = flag.Int("mincand", 0, "fail unless at least this many verified candidates per base")
		tol      = flag.Float64("tolerance", 0, "fail when a verified estimate/measured ratio leaves [1/(1+t), 1+t]")
	)
	flag.Parse()

	opts := isx.Options{MaxNodes: *maxNodes, Top: *top, Scale: *scale, NoVerify: *noVerify}
	for _, k := range strings.Split(*kernels, ",") {
		if k = strings.TrimSpace(k); k != "" {
			opts.Kernels = append(opts.Kernels, k)
		}
	}

	var reports []*isx.Report
	for _, spec := range strings.Split(*procs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		proc, err := pdesc.Resolve(spec)
		if err != nil {
			return fatal(err)
		}
		rep, err := isx.Mine(proc, opts)
		if err != nil {
			return fatal(fmt.Errorf("mine %s: %w", proc.Name, err))
		}
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		return fatal(fmt.Errorf("no base targets"))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if len(reports) == 1 {
			err = enc.Encode(reports[0])
		} else {
			err = enc.Encode(reports)
		}
		if err != nil {
			return fatal(err)
		}
	} else {
		for _, rep := range reports {
			printReport(rep)
		}
	}

	ok := true
	for _, rep := range reports {
		if err := assertReport(rep, *minCand, *tol); err != nil {
			fmt.Fprintf(os.Stderr, "isxmine: %s: %v\n", rep.Processor, err)
			ok = false
		}
	}
	if !ok {
		return 1
	}
	return 0
}

func printReport(rep *isx.Report) {
	fmt.Printf("processor %s, kernels %s, patterns up to %d nodes: %d candidates\n",
		rep.Processor, strings.Join(rep.Kernels, ","), rep.MaxNodes, len(rep.Candidates))
	for _, c := range rep.Candidates {
		vec := ""
		if c.HasVector {
			vec = fmt.Sprintf(" (+v%s @%d)", c.Name, c.VectorCycles)
		}
		fmt.Printf("  %-6s %-40s %d cycles%s  area %.0f  est %d  merit %.1f\n",
			c.Name, c.Semantics, c.ScalarCycles, vec, c.Area, c.EstSavings, c.Merit)
		for _, d := range c.Deltas {
			if d.Err != "" {
				fmt.Printf("         %-8s FAILED: %s\n", d.Kernel, d.Err)
				continue
			}
			fmt.Printf("         %-8s n=%-5d %d -> %d cycles (%.2fx, %d sites), est %d vs measured %d\n",
				d.Kernel, d.N, d.BaseCycles, d.NewCycles, d.Speedup, d.Selected, d.Estimated, d.Measured)
		}
	}
}

// assertReport enforces the CI gates: a minimum number of verified
// candidates and an estimate-accuracy tolerance.
func assertReport(rep *isx.Report, minCand int, tol float64) error {
	verified := 0
	for _, c := range rep.Candidates {
		good := false
		for _, d := range c.Deltas {
			if d.Err != "" || d.Selected == 0 || d.Measured <= 0 {
				continue
			}
			good = true
			if tol > 0 {
				ratio := float64(d.Estimated) / float64(d.Measured)
				lo, hi := 1/(1+tol), 1+tol
				if ratio < lo || ratio > hi {
					return fmt.Errorf("%s on %s: estimate %d vs measured %d (ratio %.2f outside [%.2f, %.2f])",
						c.Name, d.Kernel, d.Estimated, d.Measured, ratio, lo, hi)
				}
			}
		}
		if good {
			verified++
		}
	}
	if verified < minCand {
		return fmt.Errorf("%d verified candidates, want >= %d", verified, minCand)
	}
	return nil
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "isxmine:", err)
	return 1
}
