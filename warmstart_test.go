package mat2c_test

// Warm-start integration test for the durable artifact store: the same
// DSE sweep, run twice as separate processes sharing one -cachedir,
// must produce byte-identical reports (after stripping timing and
// cache-traffic fields) with the second run compiling nothing — every
// variant restored from disk.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// warmSweep keeps the sweep tiny: 2 widths × 2 complex = 4 variants on
// one small kernel. The point is the cache boundary, not DSE coverage.
const warmSweep = `{
  "base": "dspasip",
  "widths": [4, 8],
  "complex": [true, false]
}`

// volatileReportFields matches the JSON lines that legitimately differ
// between a cold and a warm run: wall-clock and cache-traffic counters.
var volatileReportFields = regexp.MustCompile(`(?m)^\s*"(elapsed_us|cache_lookups|cache_hits)":.*$`)

func normalizeReport(s string) string {
	return volatileReportFields.ReplaceAllString(s, "")
}

func runDSEProcess(t *testing.T, cacheDir, sweepPath string) (report, stats string) {
	t.Helper()
	cmd := exec.Command("go", "run", "./cmd/asipdse",
		"-json", "-cachestats",
		"-cachedir", cacheDir,
		"-sweep", sweepPath,
		"-kernels", "fir", "-scale", "0.1")
	cmd.Dir = "."
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("asipdse failed: %v\nstderr:\n%s", err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// cacheStatsFrom extracts the JSON object asipdse -cachestats prints to
// stderr after the "cache: " prefix.
func cacheStatsFrom(t *testing.T, stderr string) map[string]interface{} {
	t.Helper()
	i := strings.Index(stderr, "cache: ")
	if i < 0 {
		t.Fatalf("no cache stats in stderr:\n%s", stderr)
	}
	var st map[string]interface{}
	if err := json.Unmarshal([]byte(stderr[i+len("cache: "):]), &st); err != nil {
		t.Fatalf("parsing cache stats: %v\nstderr:\n%s", err, stderr)
	}
	return st
}

func statCounter(t *testing.T, st map[string]interface{}, name string) float64 {
	t.Helper()
	v, ok := st[name].(float64)
	if !ok {
		t.Fatalf("cache stats missing %q: %v", name, st)
	}
	return v
}

func TestWarmStartDSE(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run twice")
	}
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "store")
	sweepPath := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(sweepPath, []byte(warmSweep), 0o644); err != nil {
		t.Fatal(err)
	}

	cold, coldStats := runDSEProcess(t, cacheDir, sweepPath)
	warm, warmStats := runDSEProcess(t, cacheDir, sweepPath)

	// The warm report must be byte-identical once volatile fields are
	// stripped: restored artifacts reproduce the exact cycle counts,
	// code sizes, and frontier of the cold run.
	if normalizeReport(cold) != normalizeReport(warm) {
		t.Errorf("cold and warm reports differ:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}

	cs := cacheStatsFrom(t, coldStats)
	ws := cacheStatsFrom(t, warmStats)

	// Cold run: every variant compiled, nothing restored.
	if statCounter(t, cs, "compiles") == 0 {
		t.Errorf("cold run compiled nothing: %v", cs)
	}
	if statCounter(t, cs, "disk_hits") != 0 {
		t.Errorf("cold run hit the empty store: %v", cs)
	}

	// Warm run: zero compiles, every variant restored from disk — at
	// least one disk hit per variant in the sweep (4 variants here).
	if got := statCounter(t, ws, "compiles"); got != 0 {
		t.Errorf("warm run compiled %v times, want 0", got)
	}
	if got := statCounter(t, ws, "disk_hits"); got < 4 {
		t.Errorf("warm run restored only %v artifacts, want >= 4 (one per variant)", got)
	}
	if statCounter(t, ws, "disk_decode_errors") != 0 {
		t.Errorf("warm run hit decode errors: %v", ws)
	}
}
