package mat2c_test

// End-to-end tests for the command-line tools, exercising the binaries
// the way a user does (via `go run`).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const cliKernel = `function y = axpy(a, x, b)
n = length(x);
y = zeros(1, n);
for i = 1:n
    y(i) = a * x(i) + b(i);
end
end`

func runTool(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func writeKernel(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "axpy.m")
	if err := os.WriteFile(path, []byte(cliKernel), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIMat2cEmitsC(t *testing.T) {
	path := writeKernel(t)
	out, err := runTool(t, "run", "./cmd/mat2c",
		"-params", "real, real(1,:), real(1,:)", "-stats", path)
	if err != nil {
		t.Fatalf("mat2c failed: %v\n%s", err, out)
	}
	for _, want := range []string{"void axpy(", "#include \"asip_intrinsics.h\"",
		"vectorized loops: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIMat2cEmitIRAndVM(t *testing.T) {
	path := writeKernel(t)
	out, err := runTool(t, "run", "./cmd/mat2c",
		"-params", "real, real(1,:), real(1,:)", "-emit", "ir", path)
	if err != nil {
		t.Fatalf("mat2c -emit ir failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "func axpy(") {
		t.Errorf("IR output malformed:\n%s", out)
	}
	out, err = runTool(t, "run", "./cmd/mat2c",
		"-params", "real, real(1,:), real(1,:)", "-emit", "vm", path)
	if err != nil {
		t.Fatalf("mat2c -emit vm failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ret") || !strings.Contains(out, "program axpy") {
		t.Errorf("VM output malformed:\n%s", out)
	}
}

func TestCLIMat2cHeaderFile(t *testing.T) {
	path := writeKernel(t)
	dir := t.TempDir()
	hdr := filepath.Join(dir, "asip_intrinsics.h")
	csrc := filepath.Join(dir, "axpy.c")
	out, err := runTool(t, "run", "./cmd/mat2c",
		"-params", "real, real(1,:), real(1,:)", "-o", csrc, "-header", hdr, path)
	if err != nil {
		t.Fatalf("mat2c failed: %v\n%s", err, out)
	}
	hdata, err := os.ReadFile(hdr)
	if err != nil || !strings.Contains(string(hdata), "ASIP_INTRINSICS_H") {
		t.Errorf("header not written: %v", err)
	}
	cdata, err := os.ReadFile(csrc)
	if err != nil || !strings.Contains(string(cdata), "void axpy(") {
		t.Errorf("C not written: %v", err)
	}
}

func TestCLIMat2cBadInput(t *testing.T) {
	path := writeKernel(t)
	// Wrong parameter count must fail with a diagnostic.
	out, err := runTool(t, "run", "./cmd/mat2c", "-params", "real", path)
	if err == nil {
		t.Errorf("expected failure:\n%s", out)
	}
}

func TestCLIAsipsim(t *testing.T) {
	path := writeKernel(t)
	out, err := runTool(t, "run", "./cmd/asipsim",
		"-params", "real, real(1,:), real(1,:)",
		"-args", "[2.0, [1,2,3,4], [10,20,30,40]]", path)
	if err != nil {
		t.Fatalf("asipsim failed: %v\n%s", err, out)
	}
	for _, want := range []string{"result 0: 1x4 [12 24 36 48]", "cycles:", "vectorized loops: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIAsipsimClasses(t *testing.T) {
	path := writeKernel(t)
	out, err := runTool(t, "run", "./cmd/asipsim",
		"-params", "real, real(1,:), real(1,:)",
		"-args", "[2.0, [1,2,3,4,5,6,7,8], [1,1,1,1,1,1,1,1]]",
		"-classes", path)
	if err != nil {
		t.Fatalf("asipsim failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "vload") {
		t.Errorf("expected vload in class counts:\n%s", out)
	}
}

func TestCLIBenchtabQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchtab is slow")
	}
	out, err := runTool(t, "run", "./cmd/benchtab", "-table1", "-scale", "0.1")
	if err != nil {
		t.Fatalf("benchtab failed: %v\n%s", err, out)
	}
	for _, want := range []string{"Table I", "fir", "iirsos", "cfir", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIMat2cBundle(t *testing.T) {
	path := writeKernel(t)
	dir := filepath.Join(t.TempDir(), "proj")
	out, err := runTool(t, "run", "./cmd/mat2c",
		"-params", "real, real(1,:), real(1,:)", "-bundle", dir, path)
	if err != nil {
		t.Fatalf("mat2c -bundle failed: %v\n%s", err, out)
	}
	for _, f := range []string{"axpy.c", "axpy.h", "asip_intrinsics.h", "Makefile"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	// The bundle must build with make/cc when available.
	if _, err := exec.LookPath("cc"); err == nil {
		cmd := exec.Command("cc", "-O1", "-Wall", "-c", "-o", filepath.Join(dir, "axpy.o"),
			filepath.Join(dir, "axpy.c"))
		cmd.Dir = dir
		if bout, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("bundle does not compile: %v\n%s", err, bout)
		}
	}
}

// TestExamplesRun smoke-runs every example main and checks a
// characteristic line of its output.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow to build")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "cycles:"},
		{"firfilter", "speedup:"},
		{"qamdemod", "symbol errors: 0"},
		{"retarget", "myasip"},
		{"peakfinder", "expected dominant bin: 51"},
	}
	for _, c := range cases {
		out, err := runTool(t, "run", "./examples/"+c.dir)
		if err != nil {
			t.Errorf("example %s failed: %v\n%s", c.dir, err, out)
			continue
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("example %s output missing %q:\n%s", c.dir, c.want, out)
		}
	}
}
