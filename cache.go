package mat2c

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"mat2c/internal/artifact"
)

// cacheKeyVersion invalidates every cached artifact when the key layout
// (or anything the key cannot see, like pipeline semantics) changes.
// Bump it whenever a compiler change can alter output for an unchanged
// input.
const cacheKeyVersion = "mat2c-cache-v1"

// Cache is a content-addressed, bounded LRU cache of compilation
// results, keyed by SHA-256 over everything that determines the
// artifact: source text, entry name, parameter types, the full target
// description, and the pipeline options. Identical inputs therefore
// share one compile; any change to any input misses.
//
// A Cache is safe for concurrent use. Cached *Result values are shared
// between callers: all Result accessors and Run methods are safe to use
// concurrently (each Run builds a fresh VM), but callers must not
// mutate the Processor a shared Result carries.
//
// A Cache is optionally backed by a durable artifact.Store (SetStore)
// and, behind that, a fleet-shared remote store (SetRemoteStore):
// memory misses consult the local store, then the remote, before
// compiling, and fresh compilations write through asynchronously to
// every attached tier. A store entry that fails to decode —
// corruption, a format-version bump, a cache-key-version bump —
// degrades to a recompile: it is counted, the entry is deleted
// best-effort, and the caller never sees an error from a store tier.
// A remote outage likewise degrades to local-only operation; store
// failures are never surfaced to compile callers.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64

	// flights holds the in-progress compilation per key so concurrent
	// misses share one pipeline run instead of compiling redundantly.
	flights     map[string]*flight
	flightWaits uint64

	// Disk tier. store is written once (SetStore) before concurrent use;
	// writes holds in-flight asynchronous write-throughs for Flush.
	store        artifact.Store
	writes       sync.WaitGroup
	compiles     uint64
	diskHits     uint64
	diskMisses   uint64
	decodeErrors uint64
	storeErrors  uint64

	// Remote tier (fleet-shared, behind the disk tier). All reads are
	// mutex-guarded, so SetRemoteStore is safe even mid-traffic — a
	// worker attaches it when the coordinator advertises its endpoint.
	remote             artifact.Store
	remoteHits         uint64
	remoteMisses       uint64
	remoteDecodeErrors uint64
	remoteStoreErrors  uint64
}

type cacheEntry struct {
	key string
	res *Result
}

// flight is one in-progress miss: the first caller on a key (the
// leader) compiles while later callers (followers) wait on done.
// cancelled marks a leader that gave up because its own context ended —
// its error is private, and followers restart the lookup instead of
// inheriting it. Deterministic compile errors are shared: every
// follower would hit the same one.
type flight struct {
	done      chan struct{}
	res       *Result
	err       error
	cancelled bool
}

// DefaultCacheSize bounds a NewCache(0) cache. Compiled artifacts are
// small (strings plus a VM program), so a few hundred entries is cheap.
const DefaultCacheSize = 256

// NewCache returns an empty cache holding at most maxEntries results
// (DefaultCacheSize when maxEntries <= 0).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	return &Cache{
		max:     maxEntries,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// SetStore attaches a durable artifact store behind the in-memory
// tier. Call it once, before the cache sees concurrent traffic (it is
// part of construction, not steady-state reconfiguration).
func (c *Cache) SetStore(s artifact.Store) {
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// SetRemoteStore attaches a fleet-shared store behind the local disk
// tier. Unlike SetStore it may be called after traffic has started:
// fleet workers attach the coordinator's artifact endpoint when the
// first registration reply advertises it.
func (c *Cache) SetRemoteStore(s artifact.Store) {
	c.mu.Lock()
	c.remote = s
	c.mu.Unlock()
}

// Flush blocks until every in-flight asynchronous store write-through
// (local and remote) has completed. Servers call it on drain so a
// process exit cannot strand compiled artifacts; tests call it for
// determinism.
func (c *Cache) Flush() { c.writes.Wait() }

// CacheStats is a point-in-time snapshot of cache effectiveness.
// Compiles counts full pipeline runs (misses in every tier); the Disk*
// counters and the optional Disk snapshot are zero/nil when no store is
// attached.
type CacheStats struct {
	Entries    int    `json:"entries"`
	MaxEntries int    `json:"max_entries"`
	Hits       uint64 `json:"hits"`
	// Misses counts logical lookups that did not hit the in-memory
	// tier, tallied once each at the point they resolve, so
	// Misses == Compiles + DiskHits + RemoteHits + FlightWaits always
	// holds (failed or cancelled compiles resolve nothing and count
	// nowhere).
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`

	// Compiles counts compilations performed by CompileCached (memory
	// and disk both missed); FlightWaits counts callers that joined an
	// in-progress compilation instead of starting their own.
	Compiles    uint64 `json:"compiles"`
	FlightWaits uint64 `json:"flight_waits"`
	// Disk tier traffic as seen by this cache: hits that restored a
	// Result, misses, entries that failed to decode (degraded to a
	// recompile), and write-through errors.
	DiskHits     uint64 `json:"disk_hits"`
	DiskMisses   uint64 `json:"disk_misses"`
	DecodeErrors uint64 `json:"disk_decode_errors"`
	StoreErrors  uint64 `json:"disk_store_errors"`
	// Remote tier traffic as seen by this cache: hits that restored a
	// Result another process compiled, misses (including every failure
	// mode — outage, open breaker, corrupt entry), entries that failed
	// frame or artifact decoding, and write/publish errors.
	RemoteHits         uint64 `json:"remote_hits"`
	RemoteMisses       uint64 `json:"remote_misses"`
	RemoteDecodeErrors uint64 `json:"remote_decode_errors"`
	RemoteStoreErrors  uint64 `json:"remote_store_errors"`
	// Disk is the attached store's own counters and occupancy, when the
	// store reports them (DiskStore does).
	Disk *artifact.Stats `json:"disk,omitempty"`
	// Remote is the remote client's own counters — wire traffic,
	// retries, and circuit-breaker state — when it reports them
	// (remote.RemoteStore does).
	Remote *artifact.Stats `json:"remote,omitempty"`
}

// Stats snapshots the hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	st := CacheStats{
		Entries:            c.order.Len(),
		MaxEntries:         c.max,
		Hits:               c.hits,
		Misses:             c.misses,
		Evictions:          c.evictions,
		Compiles:           c.compiles,
		FlightWaits:        c.flightWaits,
		DiskHits:           c.diskHits,
		DiskMisses:         c.diskMisses,
		DecodeErrors:       c.decodeErrors,
		StoreErrors:        c.storeErrors,
		RemoteHits:         c.remoteHits,
		RemoteMisses:       c.remoteMisses,
		RemoteDecodeErrors: c.remoteDecodeErrors,
		RemoteStoreErrors:  c.remoteStoreErrors,
	}
	store, remote := c.store, c.remote
	c.mu.Unlock()
	if sr, ok := store.(artifact.StatsReporter); ok {
		ds := sr.Stats()
		st.Disk = &ds
	}
	if sr, ok := remote.(artifact.StatsReporter); ok {
		rs := sr.Stats()
		st.Remote = &rs
	}
	return st
}

// get returns the cached result for key, promoting it to most recently
// used and recording a hit. A miss is NOT counted here: the retry loop
// in CompileCachedContext can probe the same key several times during
// one logical lookup (a follower loops back after a cancelled leader),
// so the miss is counted exactly once at the point the lookup resolves
// — joining a flight, restoring from disk or the remote, or compiling.
// That keeps misses == compiles + disk_hits + remote_hits +
// flight_waits, the invariant the /metrics hit-rate math relies on.
func (c *Cache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	return nil, false
}

// put inserts res under key, evicting the least recently used entry
// when the cache is full.
func (c *Cache) put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Another goroutine compiled the same input concurrently; keep
		// the first artifact so every caller shares one pointer.
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// Put inserts a compiled result under its content address (as returned
// by CacheKey), evicting the least recently used entry when the cache
// is full. Callers that compile outside the cache — e.g. a server
// honoring a cache-bypass request whose contract still stores the fresh
// artifact — use it to keep the cache warm. If the key is already
// present, the existing entry is kept (and promoted) so all callers
// share one artifact. When a store is attached the result also writes
// through to it asynchronously (Flush waits for completion).
func (c *Cache) Put(key string, res *Result) {
	c.put(key, res)
	c.writeThrough(key, res)
}

// writeThrough asynchronously persists res to every attached store
// tier — local disk, then the fleet-shared remote — encoding once.
// Store failures are counted per tier, never surfaced: durability is
// an optimization, not a correctness requirement, and a remote outage
// must not slow or fail the compile path.
func (c *Cache) writeThrough(key string, res *Result) {
	c.mu.Lock()
	store, remote := c.store, c.remote
	c.mu.Unlock()
	if store == nil && remote == nil {
		return
	}
	c.writes.Add(1)
	go func() {
		defer c.writes.Done()
		data := encodeArtifact(key, res)
		if store != nil {
			if err := store.Put(key, data); err != nil {
				c.mu.Lock()
				c.storeErrors++
				c.mu.Unlock()
			}
		}
		if remote != nil {
			if err := remote.Put(key, data); err != nil {
				c.mu.Lock()
				c.remoteStoreErrors++
				c.mu.Unlock()
			}
		}
	}()
}

// publishRemote asynchronously offers a locally-restored artifact to
// the remote tier, so a fleet whose workers compiled before the shared
// cache existed converges without recompiles. When the remote can
// answer presence probes (artifact.Checker — RemoteStore does, via
// HEAD) an entry it already holds is not re-uploaded.
func (c *Cache) publishRemote(key string, res *Result) {
	c.mu.Lock()
	remote := c.remote
	c.mu.Unlock()
	if remote == nil {
		return
	}
	c.writes.Add(1)
	go func() {
		defer c.writes.Done()
		if ch, ok := remote.(artifact.Checker); ok {
			if has, err := ch.Has(key); err != nil || has {
				// Present already, or we could not ask (outage): either
				// way, skip the upload. An outage is not a store error —
				// nothing was lost.
				return
			}
		}
		if err := remote.Put(key, encodeArtifact(key, res)); err != nil {
			c.mu.Lock()
			c.remoteStoreErrors++
			c.mu.Unlock()
		}
	}()
}

// storeLocal asynchronously persists an already-encoded entry (fetched
// from the remote tier) to the local disk store, so the next cold start
// of this process hits disk instead of the network.
func (c *Cache) storeLocal(key string, data []byte) {
	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	if store == nil {
		return
	}
	c.writes.Add(1)
	go func() {
		defer c.writes.Done()
		if err := store.Put(key, data); err != nil {
			c.mu.Lock()
			c.storeErrors++
			c.mu.Unlock()
		}
	}()
}

// diskGet consults the attached store for key and restores the Result.
// Every failure mode — no store, store miss, unreadable entry, decode
// or checksum failure, key mismatch — returns ok=false and the caller
// recompiles; a decode failure additionally deletes the bad entry
// best-effort so it is not retried forever.
func (c *Cache) diskGet(key string, opts Options) (*Result, bool) {
	c.mu.Lock()
	store := c.store
	c.mu.Unlock()
	if store == nil {
		return nil, false
	}
	data, err := store.Get(key)
	if err != nil {
		c.mu.Lock()
		c.diskMisses++
		c.mu.Unlock()
		return nil, false
	}
	res, err := decodeArtifact(data, key, opts)
	if err != nil {
		c.mu.Lock()
		c.decodeErrors++
		c.diskMisses++
		c.mu.Unlock()
		store.Delete(key) // best-effort; a failure just leaves a dead entry
		return nil, false
	}
	c.mu.Lock()
	c.diskHits++
	c.mu.Unlock()
	return res, true
}

// remoteGet consults the fleet-shared remote tier. Every failure mode —
// no remote attached, clean miss, outage, open circuit breaker, corrupt
// frame, artifact decode failure — returns ok=false and the caller
// recompiles. Frame corruption (detected by the client) and artifact
// decode failures both count as remote decode errors; a decoded-corrupt
// entry is deleted from the origin best-effort so the fleet stops
// fetching it. On success the raw encoded entry is returned alongside
// the Result so the caller can warm the local disk tier without
// re-encoding.
func (c *Cache) remoteGet(key string, opts Options) (*Result, []byte, bool) {
	c.mu.Lock()
	remote := c.remote
	c.mu.Unlock()
	if remote == nil {
		return nil, nil, false
	}
	data, err := remote.Get(key)
	if err != nil {
		c.mu.Lock()
		c.remoteMisses++
		if errors.Is(err, artifact.ErrCorrupt) {
			c.remoteDecodeErrors++
		}
		c.mu.Unlock()
		return nil, nil, false
	}
	res, err := decodeArtifact(data, key, opts)
	if err != nil {
		c.mu.Lock()
		c.remoteDecodeErrors++
		c.remoteMisses++
		c.mu.Unlock()
		remote.Delete(key) // best-effort; a failure just leaves a dead entry
		return nil, nil, false
	}
	c.mu.Lock()
	c.remoteHits++
	c.mu.Unlock()
	return res, data, true
}

// startFlight registers the caller as leader of key's in-progress miss
// (leader=true) or returns the existing flight to wait on.
func (c *Cache) startFlight(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flights == nil {
		c.flights = make(map[string]*flight)
	}
	if fl, ok := c.flights[key]; ok {
		c.flightWaits++
		c.misses++ // the logical lookup resolves by joining this flight
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	return fl, true
}

// endFlight publishes the leader's outcome: the flight leaves the map
// before done closes, so a follower that retries after a cancelled
// leader can become the next leader.
func (c *Cache) endFlight(key string, fl *flight) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(fl.done)
}

// CacheKey returns the content address of a compilation: the SHA-256
// hex digest over the source, entry name, parameter types, resolved
// target description, and the option fields that affect output. Two
// compilations with equal keys produce byte-identical artifacts.
func CacheKey(source, entry string, params []Type, opts Options) (string, error) {
	cfg, err := opts.config()
	if err != nil {
		return "", err
	}
	procJSON, err := cfg.Processor.MarshalJSONIndent()
	if err != nil {
		return "", fmt.Errorf("mat2c: hashing target description: %w", err)
	}
	h := sha256.New()
	field := func(b []byte) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	field([]byte(cacheKeyVersion))
	field([]byte(source))
	field([]byte(entry))
	for _, t := range params {
		field([]byte(fmt.Sprintf("%d/%d/%d", t.Class, t.Shape.Rows, t.Shape.Cols)))
	}
	field(procJSON)
	field([]byte(fmt.Sprintf("opt=%d vec=%v intrin=%v fuse=%v emitc=%v",
		cfg.OptLevel, cfg.Vectorize, cfg.Intrinsics, cfg.Fusion, cfg.EmitC)))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CompileCached is Compile behind a content-addressed cache: it returns
// the cached Result when an identical compilation was seen before
// (reporting hit=true), compiling and caching otherwise. When the cache
// has store tiers attached, a memory miss consults the local store and
// then the fleet-shared remote before compiling — a restored artifact
// also reports hit=true — and a fresh compilation writes through
// asynchronously to every tier. A nil cache degrades to
// plain Compile. Concurrent misses on the same key share one
// compilation: the first caller runs the pipeline and every other
// caller waits for (and shares) its artifact, reporting hit=true.
func CompileCached(c *Cache, source, entry string, params []Type, opts Options) (res *Result, hit bool, err error) {
	return CompileCachedContext(context.Background(), c, source, entry, params, opts)
}

// CompileCachedContext is CompileCached under a cancellable context:
// cache lookups are unaffected (hits return immediately), but a miss's
// compilation observes ctx between pipeline stages and a cancelled
// compile is not cached. A follower waiting on another caller's
// compilation also observes its own ctx; when the leader itself is
// cancelled, followers retry rather than inherit the leader's error.
func CompileCachedContext(ctx context.Context, c *Cache, source, entry string, params []Type, opts Options) (res *Result, hit bool, err error) {
	if c == nil {
		res, err = CompileContext(ctx, source, entry, params, opts)
		return res, false, err
	}
	key, err := CacheKey(source, entry, params, opts)
	if err != nil {
		return nil, false, err
	}
	for {
		if res, ok := c.get(key); ok {
			return res, true, nil
		}
		fl, leader := c.startFlight(key)
		if !leader {
			select {
			case <-fl.done:
				if fl.cancelled {
					continue // leader's private cancellation; try again
				}
				if fl.err != nil {
					return nil, false, fl.err
				}
				return fl.res, true, nil
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		res, hit, err = c.compileMiss(ctx, key, source, entry, params, opts)
		fl.res, fl.err = res, err
		fl.cancelled = err != nil && ctx.Err() != nil
		c.endFlight(key, fl)
		return res, hit, err
	}
}

// compileMiss resolves a memory miss as the flight leader: local disk
// tier first, the fleet-shared remote next, full pipeline otherwise,
// caching whatever succeeds and warming the tiers above (and, for a
// disk hit, offering the entry upward to the remote so the fleet
// converges).
func (c *Cache) compileMiss(ctx context.Context, key, source, entry string, params []Type, opts Options) (*Result, bool, error) {
	if res, ok := c.diskGet(key, opts); ok {
		c.mu.Lock()
		c.misses++ // resolved by the disk tier
		c.mu.Unlock()
		c.put(key, res)
		c.publishRemote(key, res)
		return res, true, nil
	}
	if res, data, ok := c.remoteGet(key, opts); ok {
		c.mu.Lock()
		c.misses++ // resolved by the remote tier
		c.mu.Unlock()
		c.put(key, res)
		c.storeLocal(key, data)
		return res, true, nil
	}
	res, err := CompileContext(ctx, source, entry, params, opts)
	if err != nil {
		// Failed (or cancelled) compiles resolve nothing: the lookup
		// counts neither a miss nor a compile, keeping the stats
		// invariant exact.
		return nil, false, err
	}
	c.mu.Lock()
	c.compiles++
	c.misses++ // resolved by a full pipeline run
	c.mu.Unlock()
	c.put(key, res)
	c.writeThrough(key, res)
	return res, false, nil
}
