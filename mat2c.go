// Package mat2c is a retargetable MATLAB-to-C compiler targeting
// Application Specific Instruction set Processors (ASIPs), reproducing
// Latifis et al., "Matlab to C Compilation Targeting Application
// Specific Instruction Set Processors", DATE 2016.
//
// The compiler takes functions written in a MATLAB subset, infers static
// classes and shapes, lowers matrix code to fused loop nests, optimizes,
// auto-vectorizes to the target's SIMD width, and maps expression
// patterns onto the target's custom instructions (fused MAC, complex
// arithmetic, sum-of-absolute-differences). It produces two artifacts
// from the same IR:
//
//   - ANSI C with the target's intrinsic functions (the paper's
//     deliverable: code any C compiler accepts, via portable fallbacks);
//   - a program for the built-in cycle-model ASIP simulator, which this
//     reproduction uses in place of the authors' silicon.
//
// Targets are described by parameterized pdesc files (SIMD width,
// custom-instruction list, cycle costs); retargeting the compiler is a
// matter of writing a new JSON description.
//
// # Quick start
//
//	src := `function y = scale(x, a)
//	y = a .* x;
//	end`
//	res, err := mat2c.Compile(src, "scale",
//		[]mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Scalar(mat2c.Real)},
//		mat2c.Options{Target: "dspasip"})
//	if err != nil { ... }
//	fmt.Println(res.CSource())                  // generated ANSI C
//	out, cycles, err := res.Run(mat2c.NewVector(1, 2, 3), 2.0)
package mat2c

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mat2c/internal/artifact"
	"mat2c/internal/cgen"
	"mat2c/internal/core"
	"mat2c/internal/ir"
	"mat2c/internal/mlang"
	"mat2c/internal/pdesc"
	"mat2c/internal/sema"
	"mat2c/internal/vm"
)

func formatFile(f *mlang.File) string { return mlang.Format(f) }

// Class is the element class of a MATLAB value.
type Class = sema.Class

// Element classes for parameter declarations.
const (
	Bool    = sema.Bool
	Int     = sema.Int
	Real    = sema.Real
	Complex = sema.Complex
)

// Type declares the class and shape of an entry-function parameter.
type Type = sema.Type

// Scalar returns a 1x1 parameter type.
func Scalar(c Class) Type { return sema.ScalarType(c) }

// Vector returns a row-vector parameter type with a run-time length.
func Vector(c Class) Type {
	return Type{Class: c, Shape: sema.Shape{Rows: 1, Cols: sema.DimUnknown}}
}

// ColumnVector returns a column-vector parameter type with a run-time
// length.
func ColumnVector(c Class) Type {
	return Type{Class: c, Shape: sema.Shape{Rows: sema.DimUnknown, Cols: 1}}
}

// Matrix returns a matrix parameter type with run-time extents.
func Matrix(c Class) Type {
	return Type{Class: c, Shape: sema.Shape{Rows: sema.DimUnknown, Cols: sema.DimUnknown}}
}

// SizedVector returns a row vector with a compile-time length, enabling
// static shape checking and loop-bound folding.
func SizedVector(c Class, n int) Type {
	return Type{Class: c, Shape: sema.RowVec(n)}
}

// SizedMatrix returns a matrix with compile-time extents.
func SizedMatrix(c Class, rows, cols int) Type {
	return Type{Class: c, Shape: sema.Shape{Rows: rows, Cols: cols}}
}

// Array is a runtime dense column-major array passed to and returned
// from compiled functions.
type Array = ir.Array

// NewVector builds a 1xN real array from values.
func NewVector(vals ...float64) *Array {
	a := ir.NewFloatArray(1, len(vals))
	copy(a.F, vals)
	return a
}

// NewComplexVector builds a 1xN complex array from values.
func NewComplexVector(vals ...complex128) *Array {
	a := ir.NewComplexArray(1, len(vals))
	copy(a.C, vals)
	return a
}

// NewMatrix builds a rows×cols real array from column-major data (pass
// nil data for zeros).
func NewMatrix(rows, cols int, data []float64) (*Array, error) {
	a := ir.NewFloatArray(rows, cols)
	if data != nil {
		if len(data) != rows*cols {
			return nil, fmt.Errorf("mat2c: NewMatrix: %d values for %dx%d", len(data), rows, cols)
		}
		copy(a.F, data)
	}
	return a, nil
}

// NewComplexMatrix builds a rows×cols complex array from column-major
// data (nil for zeros).
func NewComplexMatrix(rows, cols int, data []complex128) (*Array, error) {
	a := ir.NewComplexArray(rows, cols)
	if data != nil {
		if len(data) != rows*cols {
			return nil, fmt.Errorf("mat2c: NewComplexMatrix: %d values for %dx%d", len(data), rows, cols)
		}
		copy(a.C, data)
	}
	return a, nil
}

// Processor is a target description.
type Processor = pdesc.Processor

// LoadProcessor resolves a built-in target name ("scalar", "dspasip",
// "wide2", "wide8", "nocomplex", "nosimd") or loads a JSON description
// from a file path.
func LoadProcessor(nameOrPath string) (*Processor, error) {
	return pdesc.Resolve(nameOrPath)
}

// Targets lists the built-in target names.
func Targets() []string { return pdesc.BuiltinNames() }

// Options configures a compilation.
type Options struct {
	// Target is a built-in processor name or a JSON description path.
	// Default: "dspasip".
	Target string
	// Processor overrides Target with an explicit description.
	Processor *Processor

	// Baseline selects the MATLAB-Coder-style reference pipeline
	// (no fusion, no SIMD, no custom instructions) instead of the full
	// compiler. Used by the evaluation harness; the default is the full
	// pipeline.
	Baseline bool

	// NoVectorize disables the auto-vectorizer.
	NoVectorize bool
	// NoIntrinsics disables custom-instruction selection.
	NoIntrinsics bool
	// NoFusion disables elementwise view fusion in lowering (Baseline
	// implies it; NoFusion alone keeps the rest of the full pipeline,
	// which makes every ablation combination expressible).
	NoFusion bool
	// OptLevel: 0 (the zero value) keeps the default scalar optimization
	// level (1); a negative value disables the scalar optimization
	// pipeline entirely.
	OptLevel int

	// SkipC skips ANSI C generation (IR and VM program only).
	SkipC bool
}

func (o Options) config() (core.Config, error) {
	p := o.Processor
	if p == nil {
		name := o.Target
		if name == "" {
			name = "dspasip"
		}
		var err error
		p, err = pdesc.Resolve(name)
		if err != nil {
			return core.Config{}, err
		}
	}
	var cfg core.Config
	if o.Baseline {
		cfg = core.Baseline(p)
	} else {
		cfg = core.Proposed(p)
	}
	if o.NoVectorize {
		cfg.Vectorize = false
	}
	if o.NoIntrinsics {
		cfg.Intrinsics = false
	}
	if o.NoFusion {
		cfg.Fusion = false
	}
	switch {
	case o.OptLevel < 0:
		cfg.OptLevel = 0
	case o.OptLevel > 0:
		cfg.OptLevel = o.OptLevel
	}
	cfg.EmitC = !o.SkipC
	return cfg, nil
}

// Result is a compiled MATLAB function.
type Result struct {
	res  *core.Result
	proc *pdesc.Processor

	// art is non-nil when the result was restored from the durable
	// artifact store rather than compiled in this process: rendered
	// listings (IR, AST, prototype) and diagnostics are served from it
	// because the IR/AST object graphs are not serialized.
	art *artifact.Artifact
}

// Compile compiles the MATLAB source. entry names the function to
// compile (empty selects the first function in the file); params declare
// its parameter types.
func Compile(source, entry string, params []Type, opts Options) (*Result, error) {
	return CompileContext(context.Background(), source, entry, params, opts)
}

// CompileContext is Compile under a cancellable context: the pipeline
// checks ctx between compilation stages and abandons the work (with an
// error that unwraps to ctx.Err()) once it fires.
func CompileContext(ctx context.Context, source, entry string, params []Type, opts Options) (*Result, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	res, err := core.CompileContext(ctx, source, entry, params, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{res: res, proc: cfg.Processor}, nil
}

// Entry returns the compiled entry-function name (resolved to the
// first function in the file when Compile was called with entry "").
func (r *Result) Entry() string { return r.res.Entry }

// CSource returns the generated ANSI C (empty if SkipC was set).
func (r *Result) CSource() string { return r.res.CSource }

// CHeader returns the generated asip_intrinsics.h contents.
func (r *Result) CHeader() string { return r.res.CHeader }

// IRText returns the optimized intermediate representation.
func (r *Result) IRText() string {
	if r.art != nil {
		return r.art.IRText
	}
	return ir.Print(r.res.Func)
}

// Disasm returns the VM program in assembly-like text.
func (r *Result) Disasm() string { return r.res.Program.Disasm() }

// CodeSize returns the static VM instruction count.
func (r *Result) CodeSize() int { return r.res.CodeSize() }

// VectorizedLoops reports how many loops the vectorizer widened.
func (r *Result) VectorizedLoops() int { return r.res.VectorizedLoops }

// SelectedIntrinsics reports custom-instruction selections by name.
func (r *Result) SelectedIntrinsics() map[string]int {
	out := map[string]int{}
	for k, v := range r.res.Intrinsics.Selected {
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// Processor returns the compilation target.
func (r *Result) Processor() *Processor { return r.proc }

// StageTime records how long one pipeline stage took, in pipeline
// order: parse, sema, lower, opt, vectorize, isel, vm-lower, cgen.
type StageTime = core.StageTime

// StageNames lists the instrumented pipeline stages in execution order
// (useful for pre-registering metric series).
func StageNames() []string { return core.StageNames() }

// StageTimings returns per-stage wall-clock timings for this
// compilation, one entry per StageNames() element. Disabled stages
// report a zero duration.
func (r *Result) StageTimings() []StageTime {
	out := make([]StageTime, len(r.res.Stages))
	copy(out, r.res.Stages)
	return out
}

// Warnings returns non-fatal analyzer diagnostics (e.g. complex
// ordering comparisons), formatted with source positions.
func (r *Result) Warnings() []string {
	if r.art != nil {
		return append([]string(nil), r.art.Warnings...)
	}
	var out []string
	for _, w := range r.res.Info.Warnings {
		out = append(out, w.Error())
	}
	return out
}

// AST returns the normalized source rendering of the parsed program
// (canonical spacing, explicit precedence).
func (r *Result) AST() string {
	if r.art != nil {
		return r.art.ASTText
	}
	return formatFile(r.res.Info.File)
}

// CPrototype returns a small C header declaring the compiled function.
func (r *Result) CPrototype() string {
	if r.art != nil {
		return r.art.CPrototype
	}
	return cgen.Prototype(r.res.Func)
}

// WriteBundle writes a ready-to-build C project into dir: the compiled
// function (<entry>.c), its prototype header (<entry>.h), the support
// header asip_intrinsics.h, and a minimal Makefile. The directory is
// created if needed.
func (r *Result) WriteBundle(dir string) error {
	if r.res.CSource == "" {
		return fmt.Errorf("mat2c: compile with SkipC unset to write a bundle")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := r.res.Entry
	files := map[string]string{
		"asip_intrinsics.h": r.res.CHeader,
		name + ".c":         r.res.CSource,
		name + ".h":         r.CPrototype(),
		"Makefile": fmt.Sprintf(
			"# Generated by mat2c for target %q.\n"+
				"# Host build uses the portable intrinsic fallbacks; an ASIP\n"+
				"# toolchain should define ASIP_HW and its own mappings.\n"+
				"CC ?= cc\nCFLAGS ?= -O2 -Wall\n\n%s.o: %s.c %s.h asip_intrinsics.h\n\t$(CC) $(CFLAGS) -c %s.c -o %s.o\n\nclean:\n\trm -f %s.o\n",
			r.proc.Name, name, name, name, name, name, name),
	}
	for fn, content := range files {
		if err := os.WriteFile(filepath.Join(dir, fn), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the compiled function on the cycle-model ASIP simulator.
// Arguments may be float64, int64, complex128, or *Array, matching the
// declared parameter types. It returns the function results (same Go
// types), and the simulated cycle count.
func (r *Result) Run(args ...interface{}) ([]interface{}, int64, error) {
	return r.res.Run(args...)
}

// RunContext executes like Run under a cancellable context: the
// simulator polls ctx every vm.CancelCheckStride executed instructions
// and stops with an error unwrapping to ctx.Err() once it fires.
// Cancellation polling never charges cycles, so a run that completes is
// accounted identically to Run.
func (r *Result) RunContext(ctx context.Context, args ...interface{}) ([]interface{}, int64, error) {
	return r.res.RunContext(ctx, args...)
}

// Stats describes one simulator run in detail.
type Stats struct {
	// Cycles is the charged cycle count.
	Cycles int64
	// Executed is the dynamic instruction count.
	Executed int64
	// ClassCounts tallies executed instructions per cost class /
	// custom-instruction name.
	ClassCounts map[string]int64
}

// RunWithStats executes like Run but also returns per-class execution
// counts.
func (r *Result) RunWithStats(args ...interface{}) ([]interface{}, *Stats, error) {
	return r.RunWithStatsContext(context.Background(), args...)
}

// RunWithStatsContext executes like RunWithStats under a cancellable
// context (see RunContext for the cancellation contract).
func (r *Result) RunWithStatsContext(ctx context.Context, args ...interface{}) ([]interface{}, *Stats, error) {
	m := vm.NewMachine(r.proc)
	out, err := r.res.RunOnContext(ctx, m, args...)
	if err != nil {
		return nil, nil, err
	}
	return out, &Stats{Cycles: m.Cycles, Executed: m.Executed, ClassCounts: m.ClassCounts}, nil
}

// RunTraced executes like RunWithStats while writing one line per
// executed instruction to w (a debugging aid; output can be large).
func (r *Result) RunTraced(w io.Writer, args ...interface{}) ([]interface{}, *Stats, error) {
	return r.RunTracedContext(context.Background(), w, args...)
}

// RunTracedContext is RunTraced under a cancellable context (see
// RunContext for the cancellation contract).
func (r *Result) RunTracedContext(ctx context.Context, w io.Writer, args ...interface{}) ([]interface{}, *Stats, error) {
	m := vm.NewMachine(r.proc)
	m.Trace = w
	out, err := r.res.RunOnContext(ctx, m, args...)
	if err != nil {
		return nil, nil, err
	}
	return out, &Stats{Cycles: m.Cycles, Executed: m.Executed, ClassCounts: m.ClassCounts}, nil
}
