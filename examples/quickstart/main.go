// Quickstart: compile a small MATLAB function to ANSI C with ASIP
// intrinsics, run it on the cycle-model simulator, and inspect what the
// compiler did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mat2c "mat2c"
)

const source = `function y = smooth(x)
% 3-point moving average with clamped ends.
n = length(x);
y = zeros(1, n);
y(1) = x(1);
y(n) = x(n);
for i = 2:n-1
    y(i) = (x(i-1) + x(i) + x(i+1)) / 3;
end
end`

func main() {
	// Declare the entry signature: one real row vector in.
	params := []mat2c.Type{mat2c.Vector(mat2c.Real)}

	res, err := mat2c.Compile(source, "smooth", params, mat2c.Options{Target: "dspasip"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== generated ANSI C ===")
	fmt.Println(res.CSource())

	fmt.Println("=== compiler report ===")
	fmt.Printf("vectorized loops: %d\n", res.VectorizedLoops())
	fmt.Printf("custom instructions: %v\n", res.SelectedIntrinsics())
	fmt.Printf("static code size: %d VM instructions\n\n", res.CodeSize())

	// Execute on the cycle-model ASIP simulator.
	x := mat2c.NewVector(1, 4, 2, 8, 5, 7, 3, 6)
	out, cycles, err := res.Run(x)
	if err != nil {
		log.Fatal(err)
	}
	y := out[0].(*mat2c.Array)
	fmt.Println("=== simulation ===")
	fmt.Printf("input : %v\n", x.F)
	fmt.Printf("output: %v\n", y.F)
	fmt.Printf("cycles: %d\n", cycles)
}
