// Retargeting example: the paper's "parameterized way allowing the
// support of any processor". The same MATLAB kernel is compiled for a
// plain RISC, for the shipped DSP ASIP family at several SIMD widths,
// and for a custom processor defined as a JSON description on the spot —
// and the generated C changes its intrinsics accordingly.
//
// This is the single-variant version of the design-space exploration
// loop: cmd/asipdse automates it, enumerating whole families of
// derived descriptions and reporting the Pareto frontier over cycles
// versus instruction-set cost (see docs/DSE.md).
//
//	go run ./examples/retarget
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	mat2c "mat2c"
)

const kernel = `function s = cdot(a, b)
% Complex correlation kernel.
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`

// customProc is a user-defined target: 4 float lanes, only a complex
// MAC (no cmul/cadd), with aggressive single-cycle timing.
const customProc = `{
  "name": "myasip",
  "description": "example user-defined target",
  "simd_width": 4,
  "complex_lanes": 2,
  "costs": {"cload": 2, "cstore": 2},
  "instructions": [
    {"name": "cmac",  "cname": "_my_cmac",  "cycles": 1},
    {"name": "vcmac", "cname": "_my_cmac2", "cycles": 1}
  ]
}`

func main() {
	params := []mat2c.Type{mat2c.Vector(mat2c.Complex), mat2c.Vector(mat2c.Complex)}

	// Inputs: a deterministic complex test vector.
	n := 1024
	a := mat2c.NewComplexVector(make([]complex128, n)...)
	b := mat2c.NewComplexVector(make([]complex128, n)...)
	for i := 0; i < n; i++ {
		a.C[i] = complex(float64(i%17)-8, float64(i%5)-2)
		b.C[i] = complex(float64(i%7)-3, float64(i%13)-6)
	}

	// Write the custom description to a file, as a user would.
	dir, err := os.MkdirTemp("", "mat2c-retarget")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	procPath := filepath.Join(dir, "myasip.json")
	if err := os.WriteFile(procPath, []byte(customProc), 0o644); err != nil {
		log.Fatal(err)
	}

	targets := []string{"scalar", "nosimd", "wide2", "dspasip", "wide8", procPath}

	fmt.Println("complex correlation kernel across targets")
	fmt.Printf("%-28s %6s %12s %10s  %s\n", "target", "width", "cycles", "codesize", "custom instructions")
	var ref complex128
	for i, tgt := range targets {
		p, err := mat2c.LoadProcessor(tgt)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mat2c.Compile(kernel, "cdot", params, mat2c.Options{Processor: p})
		if err != nil {
			log.Fatal(err)
		}
		out, cycles, err := res.Run(a.Clone(), b.Clone())
		if err != nil {
			log.Fatal(err)
		}
		s := out[0].(complex128)
		if i == 0 {
			ref = s
		} else if s != ref && absC(s-ref) > 1e-6*absC(ref) {
			log.Fatalf("target %s computed %v, want %v", p.Name, s, ref)
		}
		fmt.Printf("%-28s %6d %12d %10d  %v\n",
			p.Name, p.SIMDWidth, cycles, res.CodeSize(), res.SelectedIntrinsics())
	}

	// Show how the emitted C names track the description.
	p, _ := mat2c.LoadProcessor(procPath)
	res, err := mat2c.Compile(kernel, "cdot", params, mat2c.Options{Processor: p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintrinsic calls in the C generated for the custom target:")
	for _, line := range strings.Split(res.CSource(), "\n") {
		if strings.Contains(line, "_my_") {
			fmt.Println("   ", strings.TrimSpace(line))
		}
	}
}

func absC(z complex128) float64 {
	r, i := real(z), imag(z)
	if r < 0 {
		r = -r
	}
	if i < 0 {
		i = -i
	}
	if r < i {
		r, i = i, r
	}
	return r + i/2 // rough magnitude is fine for a tolerance check
}
