// FIR filtering example: design a low-pass filter in Go (windowed
// sinc), compile the MATLAB FIR kernel for the DSP ASIP, filter a noisy
// two-tone signal on the simulator, and compare the proposed pipeline
// against the MATLAB-Coder-style baseline — the paper's headline
// experiment on one kernel.
//
//	go run ./examples/firfilter
package main

import (
	"fmt"
	"log"
	"math"

	mat2c "mat2c"
)

const firSource = `function y = fir(x, h)
% FIR filter, slice formulation: each tap updates the whole output.
n = length(x);
t = length(h);
y = zeros(1, n);
for k = 1:t
    y(t:n) = y(t:n) + h(k) .* x(t-k+1:n-k+1);
end
end`

// lowpass designs a Hamming-windowed sinc low-pass filter.
func lowpass(taps int, cutoff float64) []float64 {
	h := make([]float64, taps)
	sum := 0.0
	for i := range h {
		m := float64(i) - float64(taps-1)/2
		var s float64
		if m == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*m) / (math.Pi * m)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = s * w
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum // unity DC gain
	}
	return h
}

func main() {
	const (
		n       = 2048
		taps    = 32
		fLow    = 0.02 // kept tone (normalized frequency)
		fHigh   = 0.30 // rejected tone
		cutoff  = 0.10
		fullAmp = 1.0
	)

	// Two-tone test signal.
	x := mat2c.NewVector(make([]float64, n)...)
	for i := 0; i < n; i++ {
		x.F[i] = fullAmp*math.Sin(2*math.Pi*fLow*float64(i)) +
			fullAmp*math.Sin(2*math.Pi*fHigh*float64(i))
	}
	h := mat2c.NewVector(lowpass(taps, cutoff)...)

	params := []mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Vector(mat2c.Real)}

	proposed, err := mat2c.Compile(firSource, "fir", params, mat2c.Options{Target: "dspasip"})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := mat2c.Compile(firSource, "fir", params,
		mat2c.Options{Target: "dspasip", Baseline: true})
	if err != nil {
		log.Fatal(err)
	}

	outP, cyclesP, err := proposed.Run(x.Clone(), h.Clone())
	if err != nil {
		log.Fatal(err)
	}
	outB, cyclesB, err := baseline.Run(x.Clone(), h.Clone())
	if err != nil {
		log.Fatal(err)
	}
	yP := outP[0].(*mat2c.Array)
	yB := outB[0].(*mat2c.Array)

	// Both pipelines must compute the same filter.
	maxDiff := 0.0
	for i := range yP.F {
		if d := math.Abs(yP.F[i] - yB.F[i]); d > maxDiff {
			maxDiff = d
		}
	}

	// Measure tone power before/after (skip the warm-up edge).
	power := func(y []float64, f float64) float64 {
		var re, im float64
		for i := taps; i < len(y); i++ {
			re += y[i] * math.Cos(2*math.Pi*f*float64(i))
			im += y[i] * math.Sin(2*math.Pi*f*float64(i))
		}
		return math.Hypot(re, im) / float64(len(y)-taps)
	}

	fmt.Printf("FIR low-pass on the DSP ASIP (n=%d, %d taps)\n\n", n, taps)
	fmt.Printf("kept tone      (f=%.2f): in %.3f  out %.3f\n", fLow, power(x.F, fLow), power(yP.F, fLow))
	fmt.Printf("rejected tone  (f=%.2f): in %.3f  out %.3f\n\n", fHigh, power(x.F, fHigh), power(yP.F, fHigh))

	fmt.Printf("baseline (MATLAB-Coder-style): %10d cycles\n", cyclesB)
	fmt.Printf("proposed (fused+SIMD+FMA):     %10d cycles\n", cyclesP)
	fmt.Printf("speedup: %.1fx   (pipelines agree to %.2g)\n",
		float64(cyclesB)/float64(cyclesP), maxDiff)
	fmt.Printf("\nproposed pipeline: %d vectorized loops, custom instructions %v\n",
		proposed.VectorizedLoops(), proposed.SelectedIntrinsics())
}
