// QAM demodulation example: the communications workload the paper's
// complex-arithmetic instructions target. A QPSK burst is matched-
// filtered and phase-derotated in compiled MATLAB; the complex FIR and
// derotation map onto the ASIP's cmul/cmac/conjugate-multiply ISA.
//
//	go run ./examples/qamdemod
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	mat2c "mat2c"
)

const demodSource = `function [soft, energy] = demod(rx, mf, lo)
% Matched filter then derotate by the local oscillator; also report
% the total filtered energy.
n = length(rx);
t = length(mf);
y = zeros(1, n);
for k = 1:t
    y(t:n) = y(t:n) + conj(mf(k)) .* rx(t-k+1:n-k+1);
end
soft = y .* conj(lo);
energy = sum(real(soft).^2 + imag(soft).^2);
end`

func main() {
	const (
		nsym = 256
		sps  = 4 // samples per symbol
		n    = nsym * sps
	)

	// QPSK symbols from a deterministic pattern.
	symbols := make([]complex128, nsym)
	for i := range symbols {
		bits := (i*2654435761 + 123456789) >> 3
		re := float64(1 - 2*(bits&1))
		im := float64(1 - 2*((bits>>1)&1))
		symbols[i] = complex(re, im) / math.Sqrt2
	}

	// Rectangular pulse shaping, small carrier offset, mild noise.
	rx := mat2c.NewComplexVector(make([]complex128, n)...)
	phase := 0.4 // constant phase rotation the demodulator must undo
	for i := 0; i < n; i++ {
		s := symbols[i/sps]
		noise := complex(0.01*math.Sin(float64(7*i)), 0.01*math.Cos(float64(13*i)))
		rx.C[i] = s*cmplx.Exp(complex(0, phase)) + noise
	}

	// Matched filter: rectangular pulse (normalized).
	mf := mat2c.NewComplexVector(make([]complex128, sps)...)
	for i := 0; i < sps; i++ {
		mf.C[i] = complex(1.0/float64(sps), 0)
	}

	// Local oscillator: the constant rotation (per sample here).
	lo := mat2c.NewComplexVector(make([]complex128, n)...)
	for i := range lo.C {
		lo.C[i] = cmplx.Exp(complex(0, phase))
	}

	params := []mat2c.Type{
		mat2c.Vector(mat2c.Complex),
		mat2c.Vector(mat2c.Complex),
		mat2c.Vector(mat2c.Complex),
	}
	proposed, err := mat2c.Compile(demodSource, "demod", params, mat2c.Options{Target: "dspasip"})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := mat2c.Compile(demodSource, "demod", params,
		mat2c.Options{Target: "dspasip", Baseline: true})
	if err != nil {
		log.Fatal(err)
	}

	outP, cyP, err := proposed.Run(rx.Clone(), mf.Clone(), lo.Clone())
	if err != nil {
		log.Fatal(err)
	}
	_, cyB, err := baseline.Run(rx.Clone(), mf.Clone(), lo.Clone())
	if err != nil {
		log.Fatal(err)
	}
	soft := outP[0].(*mat2c.Array)

	// Slice at symbol centers and count symbol errors.
	errors := 0
	for i := 1; i < nsym; i++ { // skip the filter warm-up symbol
		z := soft.C[i*sps+sps-1]
		dec := complex(sign(real(z)), sign(imag(z))) / math.Sqrt2
		if cmplx.Abs(dec-symbols[i]) > 1e-9 {
			errors++
		}
	}

	fmt.Printf("QPSK demodulation on the DSP ASIP (%d symbols, %d samples)\n\n", nsym, n)
	fmt.Printf("symbol errors: %d / %d\n", errors, nsym-1)
	fmt.Printf("filtered energy: %.1f\n\n", outP[1].(float64))
	fmt.Printf("baseline (MATLAB-Coder-style): %10d cycles\n", cyB)
	fmt.Printf("proposed (complex ISA + SIMD): %10d cycles\n", cyP)
	fmt.Printf("speedup: %.1fx\n\n", float64(cyB)/float64(cyP))
	fmt.Printf("custom instructions used: %v\n", proposed.SelectedIntrinsics())
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
