// Spectrum peak finder: an end-to-end DSP pipeline in compiled MATLAB —
// window, radix-2 FFT, periodogram, threshold with logical indexing,
// and dominant-peak extraction with [m, i] = max(...). Exercises the
// complex ISA, the vectorizer, and the language extensions (switch,
// masks, find).
//
//	go run ./examples/peakfinder
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	mat2c "mat2c"
)

const analyzerSource = `function [pbin, pmag, nbins, navg] = analyze(x, w, win)
% Window the signal (win selects the window), FFT, and report the
% dominant positive-frequency bin plus loud-bin statistics.
n = length(x);
xw = zeros(1, n);
half = fix(n / 2);

for i = 1:n
    switch win
    case 1
        c = 0.5 - 0.5 * cos(2 * pi * (i - 1) / (n - 1));          % Hann
    case 2
        c = 0.54 - 0.46 * cos(2 * pi * (i - 1) / (n - 1));        % Hamming
    otherwise
        c = 1;                                                    % rectangular
    end
    xw(i) = x(i) * c;
end

% Radix-2 DIT FFT (in place) with precomputed twiddles.
y = zeros(1, n);
y(1:n) = xw(1:n);
j = 1;
for i = 1:n-1
    if i < j
        t = y(j);
        y(j) = y(i);
        y(i) = t;
    end
    k = fix(n / 2);
    while k < j
        j = j - k;
        k = fix(k / 2);
    end
    j = j + k;
end
len = 2;
while len <= n
    hl = fix(len / 2);
    step = fix(n / len);
    i0 = 1;
    while i0 <= n - len + 1
        for k = 0:hl-1
            t = w(k * step + 1) * y(i0 + k + hl);
            y(i0 + k + hl) = y(i0 + k) - t;
            y(i0 + k) = y(i0 + k) + t;
        end
        i0 = i0 + len;
    end
    len = len * 2;
end

% Periodogram over positive frequencies.
p = zeros(1, half);
for k = 1:half
    p(k) = abs(y(k))^2 / n;
end

% Dominant peak and loud-bin statistics via masks.
[pmag, pbin] = max(p);
loud = p(p > pmag / 100);
nbins = nnz(p > pmag / 100);
navg = sum(loud) / max(nbins, 1);
end`

func main() {
	const (
		n  = 1024
		f1 = 50.0 / n // tone at bin 51
		f2 = 200.0 / n
	)

	// Two tones plus deterministic pseudo-noise.
	x := mat2c.NewComplexVector(make([]complex128, n)...)
	for i := 0; i < n; i++ {
		v := math.Sin(2*math.Pi*f1*float64(i)) + 0.25*math.Sin(2*math.Pi*f2*float64(i)) +
			0.003*math.Sin(float64(i*i%97))
		x.C[i] = complex(v, 0)
	}
	// Twiddles for the kernel.
	w := mat2c.NewComplexVector(make([]complex128, n/2)...)
	for k := 0; k < n/2; k++ {
		w.C[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}

	params := []mat2c.Type{
		mat2c.Vector(mat2c.Complex),
		mat2c.Vector(mat2c.Complex),
		mat2c.Scalar(mat2c.Int),
	}
	res, err := mat2c.Compile(analyzerSource, "analyze", params, mat2c.Options{Target: "dspasip"})
	if err != nil {
		log.Fatal(err)
	}

	windows := []struct {
		id   int64
		name string
	}{{1, "hann"}, {2, "hamming"}, {0, "rectangular"}}

	fmt.Printf("spectrum analysis of a two-tone signal (n=%d) on the DSP ASIP\n\n", n)
	fmt.Printf("%-12s %10s %12s %10s %12s %12s\n",
		"window", "peak bin", "peak power", "loud bins", "avg power", "cycles")
	for _, win := range windows {
		out, cycles, err := res.Run(x.Clone(), w.Clone(), win.id)
		if err != nil {
			log.Fatal(err)
		}
		pbin := out[0].(int64)
		pmag := out[1].(float64)
		nbins := out[2].(int64)
		navg := out[3].(float64)
		fmt.Printf("%-12s %10d %12.2f %10d %12.2f %12d\n",
			win.name, pbin, pmag, nbins, navg, cycles)
	}
	fmt.Printf("\nexpected dominant bin: %d (tone at %.4f cycles/sample)\n", 51, f1)
	fmt.Printf("custom instructions used: %v\n", res.SelectedIntrinsics())
}
