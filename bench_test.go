package mat2c_test

// Benchmark harness regenerating every table and figure of the
// evaluation (see DESIGN.md and EXPERIMENTS.md):
//
//	go test -bench=Table1 .     headline speedups (Table I)
//	go test -bench=Fig2 .       feature ablation (Figure 2)
//	go test -bench=Fig3 .       SIMD width sweep (Figure 3)
//	go test -bench=Table2 .     static code size (Table II)
//	go test -bench=Compile .    compiler throughput (not a paper metric)
//
// Each evaluation benchmark reports the model's cycle count for its
// configuration as the "cycles" metric (the quantity the paper's tables
// contain) and, where meaningful, the static code size as "codesize".
// ns/op measures host simulation wall-clock, which is not a paper
// metric. Run cmd/benchtab for the assembled tables.

import (
	"fmt"
	"testing"

	mat2c "mat2c"
	"mat2c/internal/bench"
	"mat2c/internal/core"
	"mat2c/internal/pdesc"
)

// benchScale shrinks problem sizes under -short.
func benchScale() float64 {
	if testing.Short() {
		return 0.25
	}
	return 1.0
}

func runConfig(b *testing.B, k *bench.Kernel, cfg core.Config, scale float64) {
	b.Helper()
	n := bench.SizeFor(k, scale)
	var st *bench.Stats
	var err error
	for i := 0; i < b.N; i++ {
		st, err = bench.RunPipeline(k, cfg, n)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Cycles), "cycles")
	b.ReportMetric(float64(st.CodeSize), "codesize")
}

// BenchmarkTable1 regenerates Table I: every kernel under the baseline
// and the proposed pipeline on the DSP ASIP.
func BenchmarkTable1(b *testing.B) {
	proc := pdesc.Builtin("dspasip")
	scale := benchScale()
	for _, k := range bench.Kernels() {
		k := k
		b.Run(k.Name+"/baseline", func(b *testing.B) { runConfig(b, k, core.Baseline(proc), scale) })
		b.Run(k.Name+"/proposed", func(b *testing.B) { runConfig(b, k, core.Proposed(proc), scale) })
	}
}

// BenchmarkFig2 regenerates Figure 2: the per-feature ablation on the
// DSP ASIP (fusion, SIMD, custom instructions, full).
func BenchmarkFig2(b *testing.B) {
	proc := pdesc.Builtin("dspasip")
	scale := benchScale()
	for _, k := range bench.Kernels() {
		k := k
		for _, ac := range bench.AblationConfigs() {
			ac := ac
			b.Run(k.Name+"/"+ac.Name, func(b *testing.B) { runConfig(b, k, ac.Cfg(proc), scale) })
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: the SIMD width sweep (full
// pipeline on the ASIP family with 1, 2, 4 and 8 float lanes).
func BenchmarkFig3(b *testing.B) {
	scale := benchScale()
	for _, k := range bench.Kernels() {
		k := k
		for _, p := range bench.WidthTargets() {
			p := p
			b.Run(k.Name+"/"+p.Name, func(b *testing.B) { runConfig(b, k, core.Proposed(p), scale) })
		}
	}
}

// BenchmarkTable2 regenerates Table II: static code size. The reported
// "codesize" metric is the table's content; cycles are incidental.
func BenchmarkTable2(b *testing.B) {
	proc := pdesc.Builtin("dspasip")
	for _, k := range bench.Kernels() {
		k := k
		b.Run(k.Name+"/baseline", func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(k.Source, k.Entry, k.Params, core.Baseline(proc))
				if err != nil {
					b.Fatal(err)
				}
				size = res.CodeSize()
			}
			b.ReportMetric(float64(size), "codesize")
		})
		b.Run(k.Name+"/proposed", func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(k.Source, k.Entry, k.Params, core.Proposed(proc))
				if err != nil {
					b.Fatal(err)
				}
				size = res.CodeSize()
			}
			b.ReportMetric(float64(size), "codesize")
		})
	}
}

// BenchmarkCompile measures compiler throughput through the public API
// (front end + middle end + both backends), per kernel.
func BenchmarkCompile(b *testing.B) {
	for _, k := range bench.Kernels() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mat2c.Compile(k.Source, k.Entry, k.Params,
					mat2c.Options{Target: "dspasip"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures raw cycle-model execution throughput
// (host ns per simulated instruction) on the FIR kernel.
func BenchmarkSimulator(b *testing.B) {
	k := bench.KernelByName("fir")
	proc := pdesc.Builtin("dspasip")
	res, err := core.Compile(k.Source, k.Entry, k.Params, core.Proposed(proc))
	if err != nil {
		b.Fatal(err)
	}
	args := k.Inputs(1024)
	b.ResetTimer()
	var executed int64
	for i := 0; i < b.N; i++ {
		_, cycles, err := res.Run(args...)
		if err != nil {
			b.Fatal(err)
		}
		executed += cycles
	}
	b.ReportMetric(float64(executed)/float64(b.N), "cycles/op")
}

// BenchmarkFig4 regenerates the memory-cost sensitivity study
// (extension experiment; see EXPERIMENTS.md).
func BenchmarkFig4(b *testing.B) {
	scale := benchScale()
	for _, k := range bench.Kernels() {
		k := k
		for _, c := range bench.MemCostSweep {
			c := c
			b.Run(fmt.Sprintf("%s/mem%d", k.Name, c), func(b *testing.B) {
				p := bench.MemVariant(c)
				b.Run("baseline", func(b *testing.B) { runConfig(b, k, core.Baseline(p), scale) })
				b.Run("proposed", func(b *testing.B) { runConfig(b, k, core.Proposed(p), scale) })
			})
		}
	}
}
