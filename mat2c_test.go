package mat2c_test

import (
	"math"
	"strings"
	"testing"

	mat2c "mat2c"
)

const scaleSrc = `function y = scale(x, a)
y = a .* x + 1;
end`

func TestPublicAPICompileAndRun(t *testing.T) {
	res, err := mat2c.Compile(scaleSrc, "scale",
		[]mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Scalar(mat2c.Real)},
		mat2c.Options{Target: "dspasip"})
	if err != nil {
		t.Fatal(err)
	}
	out, cycles, err := res.Run(mat2c.NewVector(1, 2, 3, 4), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Error("no cycles charged")
	}
	y := out[0].(*mat2c.Array)
	want := []float64{3, 5, 7, 9}
	for i, w := range want {
		if y.F[i] != w {
			t.Errorf("y[%d] = %v, want %v", i, y.F[i], w)
		}
	}
}

func TestPublicAPICSource(t *testing.T) {
	res, err := mat2c.Compile(scaleSrc, "scale",
		[]mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Scalar(mat2c.Real)},
		mat2c.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.CSource(), "void scale(") {
		t.Errorf("CSource missing function:\n%s", res.CSource())
	}
	if !strings.Contains(res.CHeader(), "ASIP_INTRINSICS_H") {
		t.Error("CHeader missing guard")
	}
	if res.VectorizedLoops() == 0 {
		t.Error("expected the loop to vectorize on the default target")
	}
}

func TestPublicAPIBaselineSlower(t *testing.T) {
	params := []mat2c.Type{mat2c.Vector(mat2c.Complex), mat2c.Vector(mat2c.Complex)}
	src := `function s = cdot(a, b)
s = 0;
for i = 1:length(a)
    s = s + a(i) * conj(b(i));
end
end`
	full, err := mat2c.Compile(src, "cdot", params, mat2c.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := mat2c.Compile(src, "cdot", params, mat2c.Options{Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []interface{} {
		n := 256
		a := mat2c.NewComplexVector(make([]complex128, n)...)
		b := mat2c.NewComplexVector(make([]complex128, n)...)
		for i := 0; i < n; i++ {
			a.C[i] = complex(float64(i%7)-3, float64(i%5)-2)
			b.C[i] = complex(float64(i%3)-1, float64(i%11)-5)
		}
		return []interface{}{a, b}
	}
	o1, c1, err := full.Run(mk()...)
	if err != nil {
		t.Fatal(err)
	}
	o2, c2, err := base.Run(mk()...)
	if err != nil {
		t.Fatal(err)
	}
	if d := o1[0].(complex128) - o2[0].(complex128); math.Hypot(real(d), imag(d)) > 1e-6 {
		t.Errorf("results differ: %v vs %v", o1[0], o2[0])
	}
	if c1 >= c2 {
		t.Errorf("full pipeline (%d cycles) not faster than baseline (%d)", c1, c2)
	}
	if sel := full.SelectedIntrinsics(); len(sel) == 0 {
		t.Error("no custom instructions selected on dspasip")
	}
	if sel := base.SelectedIntrinsics(); len(sel) != 0 {
		t.Errorf("baseline selected intrinsics: %v", sel)
	}
}

func TestPublicAPITargets(t *testing.T) {
	names := mat2c.Targets()
	if len(names) < 5 {
		t.Fatalf("expected several built-in targets, got %v", names)
	}
	for _, n := range names {
		p, err := mat2c.LoadProcessor(n)
		if err != nil || p == nil {
			t.Errorf("target %s: %v", n, err)
		}
	}
	if _, err := mat2c.LoadProcessor("no-such-target"); err == nil {
		t.Error("expected error for unknown target")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	// Parse error.
	if _, err := mat2c.Compile("function y = f(\nend", "f", nil, mat2c.Options{}); err == nil {
		t.Error("expected parse error")
	}
	// Type error.
	if _, err := mat2c.Compile("function y = f(x)\ny = undefined_thing(x);\nend", "f",
		[]mat2c.Type{mat2c.Scalar(mat2c.Real)}, mat2c.Options{}); err == nil {
		t.Error("expected analysis error")
	}
	// Arity error.
	if _, err := mat2c.Compile(scaleSrc, "scale", []mat2c.Type{mat2c.Scalar(mat2c.Real)},
		mat2c.Options{}); err == nil {
		t.Error("expected parameter-count error")
	}
}

func TestPublicAPIMatrixHelpers(t *testing.T) {
	m, err := mat2c.NewMatrix(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.F[3] != 4 {
		t.Error("NewMatrix wrong")
	}
	if _, err := mat2c.NewMatrix(2, 2, []float64{1}); err == nil {
		t.Error("expected size mismatch error")
	}
	cm, err := mat2c.NewComplexMatrix(1, 2, []complex128{1i, 2})
	if err != nil || cm.C[0] != 1i {
		t.Error("NewComplexMatrix wrong")
	}
	if _, err := mat2c.NewComplexMatrix(3, 3, []complex128{1}); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestPublicAPIRunWithStats(t *testing.T) {
	res, err := mat2c.Compile(scaleSrc, "scale",
		[]mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Scalar(mat2c.Real)}, mat2c.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := res.RunWithStats(mat2c.NewVector(1, 2, 3, 4, 5, 6, 7, 8), 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= 0 || st.Executed <= 0 || len(st.ClassCounts) == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if st.ClassCounts["vload"] == 0 {
		t.Errorf("expected vector loads in class counts: %v", st.ClassCounts)
	}
}

func TestPublicAPIDiagnostics(t *testing.T) {
	res, err := mat2c.Compile(scaleSrc, "scale",
		[]mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Scalar(mat2c.Real)}, mat2c.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.IRText(), "func scale") {
		t.Error("IRText malformed")
	}
	if !strings.Contains(res.Disasm(), "ret") {
		t.Error("Disasm malformed")
	}
	if res.CodeSize() <= 0 {
		t.Error("CodeSize zero")
	}
	if res.Processor().Name != "dspasip" {
		t.Error("default target should be dspasip")
	}
}

func TestPublicAPIWarningsAndAST(t *testing.T) {
	src := `function y = f(a, b)
if a < b
    y = 1;
else
    y = 2;
end
end`
	res, err := mat2c.Compile(src, "f",
		[]mat2c.Type{mat2c.Scalar(mat2c.Complex), mat2c.Scalar(mat2c.Complex)},
		mat2c.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warns := res.Warnings()
	if len(warns) == 0 || !strings.Contains(warns[0], "real parts") {
		t.Errorf("expected complex-ordering warning, got %v", warns)
	}
	if !strings.Contains(res.AST(), "function y = f(a, b)") {
		t.Errorf("AST rendering malformed:\n%s", res.AST())
	}
}

func TestPublicAPIRunTraced(t *testing.T) {
	res, err := mat2c.Compile(scaleSrc, "scale",
		[]mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Scalar(mat2c.Real)}, mat2c.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	_, st, err := res.RunTraced(&buf, mat2c.NewVector(1, 2), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if int64(lines) != st.Executed {
		t.Errorf("trace has %d lines, executed %d instructions", lines, st.Executed)
	}
	if !strings.Contains(buf.String(), "ret") {
		t.Error("trace missing ret")
	}
}

// Regression: the zero value of Options.OptLevel must keep optimizations
// ON (an early version treated 0 as "disable").
func TestPublicAPIDefaultOptLevelOptimizes(t *testing.T) {
	res, err := mat2c.Compile(scaleSrc, "scale",
		[]mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Scalar(mat2c.Real)}, mat2c.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimized + vectorized code folds 1-based index arithmetic away:
	// the vector load of a loop "for i = 1:n" addresses x[k] directly.
	if strings.Contains(res.IRText(), "sub(add(") {
		t.Errorf("default compile left unfolded index arithmetic:\n%s", res.IRText())
	}
	off, err := mat2c.Compile(scaleSrc, "scale",
		[]mat2c.Type{mat2c.Vector(mat2c.Real), mat2c.Scalar(mat2c.Real)},
		mat2c.Options{OptLevel: -1, NoVectorize: true, NoIntrinsics: true})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *mat2c.Array {
		a := mat2c.NewVector(make([]float64, 64)...)
		for i := range a.F {
			a.F[i] = float64(i)
		}
		return a
	}
	_, cOn, err := res.Run(mk(), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	_, cOff, err := off.Run(mk(), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if cOff <= cOn {
		t.Errorf("disabled pipeline (%d cycles) should be slower than default (%d)", cOff, cOn)
	}
}
